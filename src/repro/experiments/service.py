"""Always-on service mode at scale: ~1M submissions, hundreds of tenants.

The experiment the paper's future-work section gestures at: run vHadoop
as a *service*.  Open-loop traffic from a synthetic tenant fleet flows
through admission control into a slot-model backend whose
:class:`~repro.cloud.controller.CostModel` is first **calibrated against
real wordcount jobs** on a shared vHadoop cluster — so the million-job
surrogate inherits the full simulator's cost structure without paying
its per-task event price.

Six arrival mixes, each a fresh same-seed universe:

* ``steady``   — homogeneous Poisson at ~80% utilisation.  The clean
  run: the experiment *asserts* zero SLO alerts and zero scaling
  actions (a correctly provisioned service must not churn).
* ``diurnal``  — sinusoidal day/night load, autoscaler following.
* ``burst-off`` — periodic 4x flash crowds, fixed capacity.
* ``burst-on``  — the *same arrival trace* (asserted by digest) with
  the alert-driven autoscaler enabled.  The experiment asserts the
  p99 latency improves — the ablation the ISSUE calls for.
* ``steady-burn`` / ``burst-burn`` — the same steady/burst universes
  with :class:`~repro.observatory.burnrate.BurnRateEngine` error-budget
  alerting instead of instantaneous thresholds.  Asserted: zero
  clean-run false positives, identical burst trace, and an
  earlier-or-equal first alert than the threshold path.

Writes ``BENCH_service.json`` (``BENCH_service.quick.json`` under
``--quick``) with per-mix latency/goodput/rejection curves, tenant
stats, autoscaler action logs and timelines, and prints a combined
``service digest`` note that the CI ``service-smoke`` job pins across
two fresh processes.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Optional

from repro.cloud import (AdmissionController, Arrival, BurstTraffic,
                         CostModel, DiurnalTraffic, ElasticAutoscaler,
                         PoissonTraffic, ServiceController, ServiceReport,
                         SharedClusterBackend, SharedVHadoopService,
                         SlotModelBackend, TenantRegistry)
from repro.cloud.traffic import JOB_CLASSES, mean_job_size_mb
from repro.experiments.common import (ExperimentResult, make_platform,
                                      scaled_cluster)
from repro.observatory.slo import AlertBook
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

#: Capacity margin over offered load for the base slot pool.
MARGIN = 1.25
#: Quota headroom: per-tenant quota ~ 8x its expected steady inflight.
#: Quotas exist to stop a *single* tenant monopolising the service; a
#: synchronized flash crowd must reach the overload/autoscaling layer
#: instead of being silently absorbed per-tenant, so the headroom sits
#: well above the burst factor.
QUOTA_HEADROOM = 8.0
#: Input sizes (MB) run as real jobs to calibrate the cost model.
CALIBRATION_SIZES = (32.0, 128.0, 512.0, 2048.0)
CALIBRATION_SIZES_QUICK = (32.0, 256.0)


def _size_quantile(q: float) -> float:
    """Quantile of the job-size mix (log-uniform within each class)."""
    acc = 0.0
    for _, lo_mb, hi_mb, prob in JOB_CLASSES:
        if q <= acc + prob:
            u = (q - acc) / prob
            return lo_mb * (hi_mb / lo_mb) ** u
        acc += prob
    return JOB_CLASSES[-1][2]


def calibrate_cost_model(seed: int, quick: bool) -> CostModel:
    """Fit the surrogate's CostModel against real wordcount runs.

    One shared 8-node cluster, one job per calibration size, each run
    solo (no queueing) so elapsed time is pure service time.  The
    surrogate then bills every simulated submission at the full
    simulator's own cost structure.
    """
    platform = make_platform(seed)
    cluster = scaled_cluster(platform, 8, name="svc-cal")
    service = SharedVHadoopService(platform, cluster)
    backend = SharedClusterBackend(service)
    sizes = CALIBRATION_SIZES_QUICK if quick else CALIBRATION_SIZES
    samples = []
    for size_mb in sizes:
        arrival = Arrival(at=platform.sim.now, tenant="default",
                          job_class="calibration", size_mb=size_mb,
                          request_id=f"cal-{int(size_mb)}")
        request = backend.request_factory(arrival)
        outcome = service.run_all([service.submit(request)])[0]
        samples.append((size_mb, outcome.total_s))
    return CostModel.fit(samples)


def _scenario_sizes(quick: bool) -> dict:
    """Arrival-mix parameters; rates x horizons total ~1.1M (full)."""
    if quick:
        return {
            "n_tenants": 48,
            "steady": dict(rate=1.2, horizon=2500.0),
            "diurnal": dict(rate=1.2, amplitude=0.5, period=1250.0,
                            horizon=2500.0),
            "burst": dict(rate=0.8, factor=4.0, every=600.0,
                          duration=150.0, horizon=2500.0),
            "tick_s": 5.0,
        }
    return {
        "n_tenants": 160,
        "steady": dict(rate=12.0, horizon=25000.0),
        "diurnal": dict(rate=12.0, amplitude=0.5, period=12500.0,
                        horizon=25000.0),
        "burst": dict(rate=8.0, factor=4.0, every=5000.0,
                      duration=800.0, horizon=25000.0),
        "tick_s": 10.0,
    }


def _run_scenario(name: str, seed: int, cost: CostModel, sizes: dict,
                  rate: float, make_traffic, horizon_s: float,
                  autoscale: bool, slo_mode: str = "threshold",
                  store_out: Optional[list] = None) -> ServiceReport:
    """One arrival mix in a fresh simulator universe.

    Capacity, quotas and the latency target all derive from the
    *calibrated* cost model and the offered rate, so the scenario stays
    balanced whatever the calibration produced.  ``slo_mode`` picks the
    alerting path: ``"threshold"`` (instantaneous, PR 6) or
    ``"burnrate"`` (error-budget windows over a time-series store); both
    feed the same book/autoscaler contract.
    """
    sim = Simulator()
    rngs = RngRegistry(seed)
    mean_service_s = cost.service_time(mean_job_size_mb())
    slots = max(4, int(math.ceil(rate * mean_service_s * MARGIN)))
    expected_inflight = rate * mean_service_s
    n_tenants = sizes["n_tenants"]
    total_weight = sum(1.0 / (1 + i) ** 0.8 for i in range(n_tenants))
    latency_target_s = 2.5 * cost.service_time(_size_quantile(0.99))
    tenants = TenantRegistry.synthetic(
        n_tenants, rngs.stream("service:fleet"),
        latency_slo_s=latency_target_s,
        quota_scale=QUOTA_HEADROOM * expected_inflight / total_weight)
    traffic = make_traffic(tenants, rngs.stream("service:traffic"))
    backend = SlotModelBackend(sim, cost, slots=slots,
                               elastic_max=slots * 4, boot_s=45.0)
    book = AlertBook(sim=sim)
    autoscaler = None
    if autoscale:
        autoscaler = ElasticAutoscaler(
            backend.pool, book, service=name, cooldown_s=30.0,
            grow_step=max(2, slots // 8), scale_in_util=0.3,
            scale_in_ticks=24)
    burn_engine = None
    if slo_mode == "burnrate":
        from repro.observatory.burnrate import BurnRateEngine
        from repro.telemetry.timeseries import TimeSeriesStore
        store = TimeSeriesStore(sim, step=sizes["tick_s"])
        burn_engine = BurnRateEngine(store, book, target=name)
        if store_out is not None:
            store_out.append(store)
    elif slo_mode != "threshold":
        raise ValueError(f"unknown slo_mode {slo_mode!r}")
    controller = ServiceController(
        sim, backend, tenants, traffic,
        admission=AdmissionController(shed_start=12.0, shed_hard=24.0),
        book=book, autoscaler=autoscaler, name=name,
        tick_s=sizes["tick_s"], latency_target_s=latency_target_s,
        burn_engine=burn_engine)
    return controller.run(horizon_s)


def burn_timelines(seed: int = 0) -> tuple[
        dict[str, list[tuple[float, float]]], list[str]]:
    """Quick burst-burn universe → sim-time SLO error timelines.

    Returns ``(series, digests)`` where ``series`` maps each
    ``slo.error.*`` series to ``[(t, mean), ...]`` points from the 10×
    downsampling tier (the tier that retains the whole quick horizon)
    and ``digests`` carries each series' content digest.  Everything is
    sim-time and deterministic, so the campaign control room can both
    chart the timelines and fold the digests into the digest CI pins.
    """
    sizes = _scenario_sizes(True)
    cost = calibrate_cost_model(seed, True)
    bu = sizes["burst"]
    holder: list = []
    _run_scenario(
        "burst-burn", seed, cost, sizes, bu["rate"],
        lambda tenants, rng: BurstTraffic(
            "burst", tenants, rng, base_rate_per_s=bu["rate"],
            burst_factor=bu["factor"], burst_every_s=bu["every"],
            burst_duration_s=bu["duration"]),
        bu["horizon"], autoscale=True, slo_mode="burnrate",
        store_out=holder)
    store = holder[0]
    series: dict[str, list[tuple[float, float]]] = {}
    digests: list[str] = []
    for (name, _labels), ts in store.items():
        if not name.startswith("slo.error."):
            continue
        series[name] = [(start, bucket.mean)
                        for start, bucket in ts.range(0.0, math.inf,
                                                      tier=1)]
        digests.append(ts.digest())
    return series, digests


def run(seed: int = 0, quick: bool = False,
        out_path: Optional[str] = None) -> ExperimentResult:
    """Calibrate, run all four arrival mixes, assert, write the bench."""
    sizes = _scenario_sizes(quick)
    cost = calibrate_cost_model(seed, quick)

    reports: dict[str, ServiceReport] = {}

    st = sizes["steady"]
    reports["steady"] = _run_scenario(
        "steady", seed, cost, sizes, st["rate"],
        lambda tenants, rng: PoissonTraffic(
            "steady", tenants, rng, rate_per_s=st["rate"]),
        st["horizon"], autoscale=True)

    di = sizes["diurnal"]
    reports["diurnal"] = _run_scenario(
        "diurnal", seed, cost, sizes, di["rate"],
        lambda tenants, rng: DiurnalTraffic(
            "diurnal", tenants, rng, base_rate_per_s=di["rate"],
            amplitude=di["amplitude"], period_s=di["period"]),
        di["horizon"], autoscale=True)

    bu = sizes["burst"]
    def burst_traffic(tenants, rng):
        return BurstTraffic(
            "burst", tenants, rng, base_rate_per_s=bu["rate"],
            burst_factor=bu["factor"], burst_every_s=bu["every"],
            burst_duration_s=bu["duration"])
    reports["burst-off"] = _run_scenario(
        "burst-off", seed, cost, sizes, bu["rate"], burst_traffic,
        bu["horizon"], autoscale=False)
    reports["burst-on"] = _run_scenario(
        "burst-on", seed, cost, sizes, bu["rate"], burst_traffic,
        bu["horizon"], autoscale=True)

    # Burn-rate arms: same traffic universes, error-budget alerting.
    reports["steady-burn"] = _run_scenario(
        "steady-burn", seed, cost, sizes, st["rate"],
        lambda tenants, rng: PoissonTraffic(
            "steady", tenants, rng, rate_per_s=st["rate"]),
        st["horizon"], autoscale=True, slo_mode="burnrate")
    reports["burst-burn"] = _run_scenario(
        "burst-burn", seed, cost, sizes, bu["rate"], burst_traffic,
        bu["horizon"], autoscale=True, slo_mode="burnrate")

    # -- the promises this mode makes, asserted ---------------------------
    steady = reports["steady"]
    if steady.counters()["alerts"]:
        raise AssertionError(
            f"clean steady run fired {steady.counters()['alerts']} "
            f"SLO alerts: {[a.slo for a in steady.book.alerts]}")
    if steady.counters()["scaling_actions"]:
        raise AssertionError("clean steady run scaled "
                             f"{steady.counters()['scaling_actions']} times")
    off, on = reports["burst-off"], reports["burst-on"]
    if on.trace_digest != off.trace_digest:
        raise AssertionError(
            f"ablation arms saw different traffic: "
            f"{on.trace_digest} != {off.trace_digest}")
    if not on.latency.p99 < off.latency.p99:
        raise AssertionError(
            f"autoscaler did not improve burst p99: "
            f"on={on.latency.p99:.1f}s vs off={off.latency.p99:.1f}s")

    # -- burn-rate ablation: budget math vs instantaneous thresholds ------
    steady_burn, burn = reports["steady-burn"], reports["burst-burn"]
    if steady_burn.counters()["alerts"]:
        raise AssertionError(
            f"clean steady run fired {steady_burn.counters()['alerts']} "
            f"burn-rate alerts: "
            f"{[a.slo for a in steady_burn.book.alerts]}")
    if burn.trace_digest != off.trace_digest:
        raise AssertionError(
            f"burn arm saw different traffic: "
            f"{burn.trace_digest} != {off.trace_digest}")
    first_burn = min((a.fired_at for a in burn.book.alerts),
                     default=math.inf)
    first_threshold = min((a.fired_at for a in on.book.alerts),
                          default=math.inf)
    if not burn.book.alerts:
        raise AssertionError("burn arm fired no alerts on burst traffic")
    if first_burn > first_threshold:
        raise AssertionError(
            f"burn-rate alerting was slower than thresholds: first alert "
            f"{first_burn:.0f}s vs {first_threshold:.0f}s")

    result = ExperimentResult(
        experiment_id="service",
        title=f"Always-on service mode: {len(reports)} arrival mixes, "
              f"{sizes['n_tenants']} tenants",
        columns=("mix", "autoscaler", "submitted", "completed",
                 "rejected", "goodput", "p50_s", "p99_s", "workers_peak",
                 "alerts", "actions"))
    total_submitted = 0
    for name, report in reports.items():
        counters = report.counters()
        total_submitted += counters["submitted"]
        rejected = (counters["rejected_quota"]
                    + counters["rejected_overload"])
        peak = max((p.workers for p in report.timeline), default=0)
        result.add(name, "off" if name == "burst-off" else "on",
                   counters["submitted"], counters["completed"], rejected,
                   round(report.goodput, 4), round(report.latency.p50, 1),
                   round(report.latency.p99, 1), peak,
                   counters["alerts"], counters["scaling_actions"])

    combined = "|".join(f"{name}:{report.digest()}"
                        for name, report in sorted(reports.items()))
    digest = hashlib.sha256(combined.encode()).hexdigest()[:16]

    result.note(f"cost model: base={cost.base_s:.1f}s "
                f"per_mb={cost.per_mb_s:.4f}s (calibrated on real jobs)")
    result.note(f"total submissions {total_submitted} across "
                f"{sizes['n_tenants']} tenants")
    result.note(f"burst p99 {off.latency.p99:.1f}s -> "
                f"{on.latency.p99:.1f}s with autoscaler "
                f"({len(on.actions)} actions)")
    result.note(f"burn-rate first alert {first_burn:.0f}s vs threshold "
                f"{first_threshold:.0f}s (0 clean-run false positives)")
    result.note(f"burn store digest {burn.burn_digest}")
    result.note(f"service digest {digest} "
                f"({len(reports)} mixes, deterministic)")

    if out_path is None:
        out_path = "BENCH_service.quick.json" if quick \
            else "BENCH_service.json"
    stride = 1 if quick else 10
    payload = {
        "experiment": "service",
        "seed": seed,
        "quick": quick,
        "cost_model": {"base_s": round(cost.base_s, 3),
                       "per_mb_s": round(cost.per_mb_s, 6)},
        "digest": digest,
        "total_submitted": total_submitted,
        "scenarios": {name: report.as_dict(timeline_stride=stride)
                      for name, report in reports.items()},
        "burn_ablation": {
            "first_alert_burn_s": (round(first_burn, 3)
                                   if math.isfinite(first_burn) else None),
            "first_alert_threshold_s": (
                round(first_threshold, 3)
                if math.isfinite(first_threshold) else None),
            "steady_false_positives": steady_burn.counters()["alerts"],
            "burn_digest": burn.burn_digest,
            "p99_burn_s": round(burn.latency.p99, 3),
        },
        "ablation": {
            "trace_digest": on.trace_digest,
            "p99_off_s": round(off.latency.p99, 3),
            "p99_on_s": round(on.latency.p99, 3),
            "p50_off_s": round(off.latency.p50, 3),
            "p50_on_s": round(on.latency.p50, 3),
            "improvement_pct": round(
                100.0 * (1 - on.latency.p99 / off.latency.p99), 2)
            if off.latency.p99 else 0.0,
        },
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    result.note(f"wrote {out_path}")
    return result
