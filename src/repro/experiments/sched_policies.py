"""Scheduler policy comparison on a shared multi-tenant cluster.

One long wordcount ("batch" pool) is submitted first and grabs every map
slot; a stream of MRBench small jobs ("interactive" pool) arrives shortly
after.  The same workload runs under the FIFO, Fair and Capacity policies
on identically-seeded platforms, so the columns isolate pure scheduling
effects: FIFO makes the smalls wait out the batch job's map waves, Fair
(min-share + preemption) hands them slots almost immediately, Capacity
sits in between (guaranteed queue capacity, but no preemption).
"""

from __future__ import annotations

from repro import constants as C
from repro.datasets.text import generate_corpus
from repro.experiments.common import (ExperimentResult, make_platform,
                                      scaled_cluster)
from repro.scheduler import (CapacityScheduler, FairScheduler, FifoScheduler,
                             JobScheduler, PoolConfig, QueueConfig,
                             SchedulerReport, SchedulingPolicy)
from repro.workloads.mrbench import mrbench_input, mrbench_job, mrbench_sizeof
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

#: Materialize 1/SCALE of the corpus; simulate the full byte volume.
VOLUME_SCALE = 100

#: Seconds after the batch submission at which the small jobs arrive —
#: late enough that the batch job already owns every map slot.
SMALL_DELAY_S = 10.0

#: CPU cost of the batch job's mapper (core-seconds per input byte).  The
#: default wordcount coefficient makes maps startup-dominated; a CPU-heavy
#: batch analytics job (~tens of seconds per map) is what creates genuine
#: slot contention for the policies to arbitrate.
BATCH_MAP_CPU_PER_BYTE = 3.0e-5

N_NODES = 8


def make_policy(name: str) -> SchedulingPolicy:
    """The three contenders, configured for the batch/interactive split."""
    if name == "fifo":
        return FifoScheduler()
    if name == "fair":
        return FairScheduler(pools=[
            PoolConfig("interactive", weight=2.0, min_share=4,
                       preemption_timeout_s=6.0),
            PoolConfig("batch", weight=1.0),
        ], preemption_check_s=2.0)
    if name == "capacity":
        return CapacityScheduler(queues=[
            QueueConfig("interactive", capacity=0.5, max_capacity=1.0),
            QueueConfig("batch", capacity=0.5, max_capacity=1.0),
        ])
    raise ValueError(f"unknown policy {name!r}")


def run(seed: int = 0, quick: bool = False) -> ExperimentResult:
    large_mb = 24 if quick else 48
    n_small = 3 if quick else 6
    result = ExperimentResult(
        experiment_id="sched",
        title=f"Scheduling policies: 1 batch wordcount ({large_mb} MB) vs "
              f"{n_small} interactive MRBench jobs on one shared "
              f"{N_NODES}-node cluster",
        columns=("policy", "makespan_s", "batch_s", "small_mean_wait_s",
                 "small_mean_total_s", "concurrent_s", "preemptions"))
    for name in ("fifo", "fair", "capacity"):
        report = run_mixed_workload(make_policy(name), seed=seed,
                                    large_mb=large_mb, n_small=n_small)
        smalls = [j for j in report.jobs if j.pool == "interactive"]
        batch = next(j for j in report.jobs if j.pool == "batch")
        result.add(name, report.makespan, batch.elapsed,
                   sum(j.wait_s for j in smalls) / len(smalls),
                   sum(j.elapsed for j in smalls) / len(smalls),
                   report.concurrent_busy_s, report.preemptions)
    result.note("fair < fifo on small-job wait: min-share + preemption "
                "hands interactive jobs slots while the batch job runs")
    result.note("capacity sits between: guaranteed queue share without "
                "preemption")
    return result


def run_mixed_workload(policy: SchedulingPolicy, seed: int = 0,
                       large_mb: int = 48, n_small: int = 6
                       ) -> SchedulerReport:
    """Run the mixed workload under ``policy``; returns the scheduler
    report (per-job and per-pool stats)."""
    platform = make_platform(seed=seed)
    cluster = scaled_cluster(platform, N_NODES, name="sched")
    sim = platform.sim

    lines = generate_corpus(
        large_mb * C.MB // VOLUME_SCALE,
        rng=platform.datacenter.rng.fresh("datasets/sched-corpus"))
    platform.upload(cluster, "/batch/input", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(VOLUME_SCALE), timed=False)
    platform.upload(cluster, "/interactive/input", mrbench_input(),
                    sizeof=mrbench_sizeof, timed=False)

    scheduler = JobScheduler(cluster, policy=policy,
                             runner=platform.runner(cluster))
    batch = wordcount_job("/batch/input", "/batch/output", n_reduces=4,
                          volume_scale=VOLUME_SCALE)
    batch.name = "batch-wordcount"
    batch.map_cpu_per_byte = BATCH_MAP_CPU_PER_BYTE
    # Three full waves over the cluster's map slots: the batch job holds
    # every slot when the interactive jobs arrive.
    batch.force_num_maps = 3 * scheduler.total_slots("map")
    events = [scheduler.submit(batch, pool="batch")]

    def arrive_later():
        yield sim.timeout(SMALL_DELAY_S)
        for i in range(n_small):
            job = mrbench_job("/interactive/input",
                              f"/interactive/out-{i}", n_maps=4, n_reduces=2)
            job.name = f"small-{i:02d}"
            events.append(scheduler.submit(job, pool="interactive"))

    sim.run_until(sim.process(arrive_later(), name="sched:arrivals"))
    sim.run_until(sim.all_of(list(events)))
    return scheduler.finalize()
