"""Fig. 2 — Wordcount: normal vs cross-domain 16-node cluster vs input size.

Paper shape: running time grows with input size; the cross-domain cluster
is consistently slower, with the gap widening as the data grows (network
I/O crossing the physical NICs).
"""

from __future__ import annotations

from typing import Sequence

from repro import constants as C
from repro.datasets.text import generate_corpus
from repro.experiments.common import (ExperimentResult, make_platform,
                                      sixteen_node_cluster)
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

#: Materialize 1/SCALE of the corpus; simulate the full byte volume.
VOLUME_SCALE = 100

QUICK_SIZES_MB = (64, 128, 256)
FULL_SIZES_MB = (64, 128, 256, 512, 1024)


def run(sizes_mb: Sequence[int] = QUICK_SIZES_MB, n_reduces: int = 4,
        seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig2",
        title="Wordcount on normal vs cross-domain 16-node hadoop virtual "
              "cluster",
        columns=("input_mb", "normal_s", "cross_domain_s", "ratio"))
    for size_mb in sizes_mb:
        elapsed = {}
        for layout in ("normal", "cross-domain"):
            platform = make_platform(seed=seed)
            cluster = sixteen_node_cluster(platform, layout)
            lines = generate_corpus(
                size_mb * C.MB // VOLUME_SCALE,
                rng=platform.datacenter.rng.fresh("datasets/corpus"))
            platform.upload(cluster, "/wc/input", lines_as_records(lines),
                            sizeof=scaled_line_sizeof(VOLUME_SCALE),
                            timed=False)
            job = wordcount_job("/wc/input", "/wc/output",
                                n_reduces=n_reduces,
                                volume_scale=VOLUME_SCALE)
            report = platform.run_job(cluster, job)
            elapsed[layout] = report.elapsed
        result.add(size_mb, elapsed["normal"], elapsed["cross-domain"],
                   elapsed["cross-domain"] / elapsed["normal"])
    result.note("cross-domain >= normal for every size; gap grows with size")
    return result
