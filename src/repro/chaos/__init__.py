"""Deterministic fault injection with automatic recovery (chaos testing).

Build a :class:`FaultPlan` of timed :class:`Fault` injections, hand it to
a :class:`ChaosInjector` bound to a running cluster, and ``start()`` it
alongside a job: the platform detects each failure through heartbeats and
replication monitors, retries the affected tasks, and heals itself.
"""

from repro.chaos.injector import ChaosInjector, ChaosReport
from repro.chaos.plan import FAULT_KINDS, Fault, FaultPlan

__all__ = ["ChaosInjector", "ChaosReport", "FAULT_KINDS", "Fault",
           "FaultPlan"]
