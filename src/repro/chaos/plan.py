"""Declarative fault plans.

A :class:`FaultPlan` is a validated, ordered list of :class:`Fault`
injections executed by the :class:`~repro.chaos.injector.ChaosInjector`
while jobs run.  Plans are pure data: the same plan against the same
seeded platform produces the same trace, event for event — plans carry a
content :meth:`~FaultPlan.digest` so experiments can assert exactly that.

Fault kinds
-----------
``vm.crash``
    Crash one worker VM (``target`` = VM name).  With ``duration > 0``
    the worker rejoins that many seconds later with a cold disk.
``host.crash``
    Crash every cluster worker resident on one physical host (``target``
    = host name) — the correlated-failure case replication placement
    exists for.  ``duration`` rejoins the survivors' VMs when the host
    returns.
``net.degrade``
    Divide a host's NIC and bridge bandwidth by ``factor`` (``target`` =
    host name) for ``duration`` seconds (0 = until the plan ends).
``net.partition``
    Like ``net.degrade`` with an effectively infinite factor: traffic
    through the host stalls until the partition heals.
``disk.slow``
    Divide one VM's effective disk/NFS rate by ``factor`` — the classic
    gray-failure straggler.  Heals after ``duration``.
``rejoin``
    Explicitly rejoin a previously crashed worker VM.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: All fault kinds the injector understands.
FAULT_KINDS = (
    "vm.crash",
    "host.crash",
    "net.degrade",
    "net.partition",
    "disk.slow",
    "rejoin",
)

#: Kinds whose ``factor`` is meaningful (must be > 1).
_FACTOR_KINDS = ("net.degrade", "disk.slow")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault injection."""

    at: float                 # injection time, simulated seconds
    kind: str                 # one of FAULT_KINDS
    target: str               # VM name or host name, depending on kind
    duration: float = 0.0     # seconds until heal/rejoin; 0 = permanent
    factor: float = 2.0       # degradation factor for net.degrade/disk.slow

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}")
        # Non-finite values must be rejected explicitly: NaN compares False
        # against every bound (so ``at < 0`` lets it through), then poisons
        # ordered()'s sort and key()'s fixed-width digest formatting.
        for name in ("at", "duration", "factor"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigError(
                    f"fault {name} must be a number, got {value!r}")
            if not math.isfinite(value):
                raise ConfigError(f"fault {name} must be finite, got {value}")
        if self.at < 0:
            raise ConfigError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise ConfigError(
                f"fault duration must be >= 0, got {self.duration}")
        if self.kind == "rejoin" and self.duration > 0:
            raise ConfigError(
                "rejoin is instantaneous (duration must be 0); schedule a "
                "later rejoin by giving the crash fault a duration instead")
        if not self.target:
            raise ConfigError(f"fault {self.kind!r} needs a target")
        if self.kind in _FACTOR_KINDS and self.factor <= 1.0:
            raise ConfigError(
                f"fault {self.kind!r} needs factor > 1, got {self.factor}")

    def key(self) -> str:
        """Canonical string form (feeds the plan digest)."""
        return (f"{self.at:.6f}|{self.kind}|{self.target}"
                f"|{self.duration:.6f}|{self.factor:.6f}")


@dataclass
class FaultPlan:
    """An ordered set of faults to inject into one cluster."""

    name: str = "chaos"
    faults: list[Fault] = field(default_factory=list)

    def add(self, fault: Fault) -> "FaultPlan":
        fault.validate()
        self.faults.append(fault)
        return self

    def validate(self) -> None:
        for fault in self.faults:
            fault.validate()

    def ordered(self) -> list[Fault]:
        """Faults in injection order (time, then declaration order)."""
        return [f for _, f in sorted(enumerate(self.faults),
                                     key=lambda pair: (pair[1].at, pair[0]))]

    @property
    def horizon(self) -> float:
        """Time of the last scheduled injection or heal."""
        return max((f.at + f.duration for f in self.faults), default=0.0)

    def digest(self) -> str:
        """Deterministic content hash of the plan.

        The name is length-prefixed so a crafted name embedding the
        ``\\n``/``|`` separators (e.g. ``"p\\n0.000000|vm.crash|..."``)
        cannot collide with a different plan whose faults spell out the
        same byte stream.
        """
        h = hashlib.sha256()
        name = self.name.encode()
        h.update(f"{len(name)}:".encode())
        h.update(name)
        for fault in self.ordered():
            h.update(b"\n")
            h.update(fault.key().encode())
        return h.hexdigest()[:16]

    def __len__(self) -> int:
        return len(self.faults)
