"""ChaosInjector: executes a :class:`~repro.chaos.plan.FaultPlan`.

The injector is a simulation process scheduled alongside the workload: it
sleeps to each fault's time, injects it, and (for faults with a duration)
spawns the matching heal/rejoin process.  Starting the injector also arms
the cluster's recovery machinery (:meth:`arm_recovery`), so every injected
failure is *detected and repaired by the platform itself* — no manual
``repair_cluster`` calls.

Every action is appended to a :class:`ChaosReport` timeline whose
:meth:`~ChaosReport.digest` is deterministic for a fixed seed + plan; the
CI smoke job asserts two same-seed runs agree on it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.chaos.plan import Fault, FaultPlan
from repro.errors import ConfigError
from repro.platform.faults import crash_worker, rejoin_worker
from repro.sim.kernel import Event
from repro.telemetry import events as EV
from repro.virt.vm import VMState

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import HadoopVirtualCluster

#: Effective bandwidth divisor modelling a network partition: traffic
#: through the host stalls (but flows stay well-defined — capacities
#: must remain > 0).
_PARTITION_FACTOR = 1e9


@dataclass
class ChaosReport:
    """Timeline of everything the injector did."""

    plan_name: str
    plan_digest: str
    #: (time, action, target) triples in execution order.
    timeline: list[tuple[float, str, str]] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    def record(self, t: float, action: str, target: str) -> None:
        self.timeline.append((t, action, target))

    def digest(self) -> str:
        """Deterministic hash of the executed timeline."""
        h = hashlib.sha256()
        h.update(self.plan_digest.encode())
        for t, action, target in self.timeline:
            h.update(f"\n{t:.6f}|{action}|{target}".encode())
        return h.hexdigest()[:16]


class ChaosInjector:
    """Runs one fault plan against one cluster."""

    def __init__(self, cluster: "HadoopVirtualCluster", plan: FaultPlan):
        plan.validate()
        self.cluster = cluster
        self.plan = plan
        self.sim = cluster.sim
        self.tracer = cluster.tracer
        self.report = ChaosReport(plan_name=plan.name,
                                  plan_digest=plan.digest())
        #: host name -> {resource: original capacity} for armed net faults.
        self._net_saved: dict[str, dict] = {}

    # -- public -----------------------------------------------------------
    def start(self) -> Event:
        """Arm recovery and launch the plan; event value is the report."""
        self.cluster.arm_recovery()
        return self.sim.process(self._run(),
                                name=f"chaos:{self.plan.name}")

    # -- plan execution ---------------------------------------------------
    def _run(self):
        # Re-validate at injection start: the fault list may have been
        # built (or grown) directly on ``plan.faults``, bypassing the
        # validation in ``add()`` and the one at construction time.
        self.plan.validate()
        self.report.started_at = self.sim.now
        self.tracer.emit(self.sim.now, EV.CHAOS_PLAN_START, self.plan.name,
                         faults=len(self.plan), digest=self.plan.digest())
        for fault in self.plan.ordered():
            delay = fault.at - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self._inject(fault)
        self.report.finished_at = self.sim.now
        self.tracer.emit(self.sim.now, EV.CHAOS_PLAN_DONE, self.plan.name,
                         actions=len(self.report.timeline))
        return self.report

    def _inject(self, fault: Fault) -> None:
        handler = {
            "vm.crash": self._vm_crash,
            "host.crash": self._host_crash,
            "net.degrade": self._net_degrade,
            "net.partition": self._net_degrade,
            "disk.slow": self._disk_slow,
            "rejoin": self._rejoin,
        }[fault.kind]
        handler(fault)

    def _after(self, delay: float, fn, label: str) -> None:
        """Run ``fn`` after ``delay`` simulated seconds."""
        def proc():
            yield self.sim.timeout(delay)
            fn()
        self.sim.process(proc(), name=f"chaos:heal:{label}")

    def _worker(self, name: str):
        for vm in self.cluster.workers:
            if vm.name == name:
                return vm
        raise ConfigError(f"fault target {name!r} is not a worker of "
                          f"{self.cluster.name}")

    # -- handlers ---------------------------------------------------------
    def _vm_crash(self, fault: Fault) -> None:
        vm = self._worker(fault.target)
        if vm.state not in (VMState.RUNNING, VMState.MIGRATING):
            # Overlapping plans are legal: crashing a VM that is already
            # down changes nothing, so the whole fault — its heal
            # included — is a recorded no-op rather than an error.
            self.report.record(self.sim.now, "vm.crash.noop", vm.name)
            return
        crash_worker(self.cluster, vm)
        self.tracer.emit(self.sim.now, EV.CHAOS_VM_CRASH, vm.name,
                         rejoin_in=fault.duration or None)
        self.report.record(self.sim.now, "vm.crash", vm.name)
        if fault.duration > 0:
            self._after(fault.duration,
                        lambda: self._do_rejoin(vm.name), vm.name)

    def _host_crash(self, fault: Fault) -> None:
        victims = [vm for vm in self.cluster.workers
                   if vm.host is not None
                   and vm.host.name == fault.target
                   and vm.state in (VMState.RUNNING, VMState.MIGRATING)]
        if fault.target not in self.cluster.datacenter.fabric.hosts:
            raise ConfigError(
                f"fault target {fault.target!r} is not a host")
        if not victims:
            # Every worker on the host is already down (an earlier fault
            # got there first): nothing to crash, nothing to heal.
            self.report.record(self.sim.now, "host.crash.noop",
                               fault.target)
            return
        for vm in victims:
            crash_worker(self.cluster, vm)
        self.tracer.emit(self.sim.now, EV.CHAOS_HOST_CRASH, fault.target,
                         vms=[vm.name for vm in victims],
                         rejoin_in=fault.duration or None)
        self.report.record(self.sim.now, "host.crash", fault.target)
        if fault.duration > 0:
            names = [vm.name for vm in victims]
            self._after(fault.duration,
                        lambda: [self._do_rejoin(n) for n in names],
                        fault.target)

    def _do_rejoin(self, vm_name: str) -> None:
        vm = self._worker(vm_name)
        if vm.state is not VMState.FAILED:
            return  # already rejoined (overlapping plans)
        rejoin_worker(self.cluster, vm)
        self.tracer.emit(self.sim.now, EV.CHAOS_REJOIN, vm.name)
        self.report.record(self.sim.now, "rejoin", vm.name)

    def _rejoin(self, fault: Fault) -> None:
        self._do_rejoin(fault.target)

    def _net_degrade(self, fault: Fault) -> None:
        fabric = self.cluster.datacenter.fabric
        try:
            host = fabric.hosts[fault.target]
        except KeyError:
            raise ConfigError(
                f"fault target {fault.target!r} is not a host") from None
        factor = (_PARTITION_FACTOR if fault.kind == "net.partition"
                  else fault.factor)
        fss = self.cluster.datacenter.fss
        saved = self._net_saved.setdefault(fault.target, {})
        for res in (host.nic, host.bridge):
            saved.setdefault(res, res.capacity)
            fss.set_capacity(res, saved[res] / factor)
        self.tracer.emit(self.sim.now, EV.CHAOS_NET_DEGRADE, fault.target,
                         factor=factor,
                         partition=fault.kind == "net.partition")
        self.report.record(self.sim.now, fault.kind, fault.target)
        if fault.duration > 0:
            self._after(fault.duration,
                        lambda: self._net_heal(fault.target), fault.target)

    def _net_heal(self, host_name: str) -> None:
        saved = self._net_saved.pop(host_name, None)
        if not saved:
            return
        fss = self.cluster.datacenter.fss
        for res, capacity in saved.items():
            fss.set_capacity(res, capacity)
        self.tracer.emit(self.sim.now, EV.CHAOS_NET_HEAL, host_name)
        self.report.record(self.sim.now, "net.heal", host_name)

    def _disk_slow(self, fault: Fault) -> None:
        vm = self._worker(fault.target)
        vm.disk_slowdown = fault.factor
        self.tracer.emit(self.sim.now, EV.CHAOS_DISK_SLOW, vm.name,
                         factor=fault.factor)
        self.report.record(self.sim.now, "disk.slow", vm.name)
        if fault.duration > 0:
            self._after(fault.duration,
                        lambda: self._disk_heal(vm), vm.name)

    def _disk_heal(self, vm) -> None:
        if vm.disk_slowdown == 1.0:
            return  # already healed (e.g. by a crash+rejoin)
        vm.disk_slowdown = 1.0
        self.tracer.emit(self.sim.now, EV.CHAOS_DISK_HEAL, vm.name)
        self.report.record(self.sim.now, "disk.heal", vm.name)
