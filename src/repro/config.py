"""Configuration dataclasses for the vHadoop platform.

These mirror the knobs the paper names: VM shape (1 VCPU / 1024 MB), host
shape (Dell T710: 8 cores, 32 GiB), Hadoop parameters (``dfs.replication``,
``dfs.block.size``, ``map.tasks.maximum``, ``reduce.tasks.maximum``), and the
platform-wide layout (hosts, NFS image store, seed).

All configs are frozen; derived variants are produced with
:func:`dataclasses.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro import constants as C
from repro.errors import ConfigError


@dataclass(frozen=True)
class VMConfig:
    """Shape of one virtual machine (paper: 1 VCPU, 1024 MB, Ubuntu 8.10)."""

    vcpus: int = C.DEFAULT_VM_VCPUS
    memory: int = C.DEFAULT_VM_MEMORY
    #: Disk image size on the NFS server (only affects boot/clone times).
    image_size: int = 4 * C.GiB

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ConfigError(f"vcpus must be >= 1, got {self.vcpus}")
        if self.memory < 64 * C.MiB:
            raise ConfigError(f"memory must be >= 64 MiB, got {self.memory}")
        if self.image_size <= 0:
            raise ConfigError("image_size must be positive")

    def with_memory(self, memory: int) -> "VMConfig":
        return dataclasses.replace(self, memory=memory)


@dataclass(frozen=True)
class HostConfig:
    """Shape of one physical machine (paper: Dell T710)."""

    cores: int = C.DEFAULT_HOST_CORES
    dram: int = C.DEFAULT_HOST_DRAM
    nic_bandwidth: float = C.GBIT_ETHERNET_BPS
    bridge_bandwidth: float = C.VIRTUAL_BRIDGE_BPS
    netback_bandwidth: float = C.XEN_NETBACK_BPS
    disk_bandwidth: float = C.DISK_BPS
    #: DRAM reserved for the hypervisor / Domain-0.
    dom0_reserved: int = 2 * C.GiB

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError(f"cores must be >= 1, got {self.cores}")
        if self.dram <= self.dom0_reserved:
            raise ConfigError("dram must exceed the Domain-0 reservation")
        for name in ("nic_bandwidth", "bridge_bandwidth", "netback_bandwidth",
                     "disk_bandwidth"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    @property
    def guest_dram(self) -> int:
        """DRAM available to guests."""
        return self.dram - self.dom0_reserved


@dataclass(frozen=True)
class HadoopConfig:
    """Hadoop cluster parameters (the paper's Hadoop Module knobs)."""

    dfs_replication: int = C.DEFAULT_DFS_REPLICATION
    dfs_block_size: int = C.DEFAULT_DFS_BLOCK_SIZE
    map_tasks_maximum: int = C.DEFAULT_MAP_SLOTS
    reduce_tasks_maximum: int = C.DEFAULT_REDUCE_SLOTS
    #: Run the combiner on map outputs when the job provides one.
    use_combiner: bool = True
    #: Prefer data-local map scheduling (node-local > host-local > remote).
    locality_aware: bool = True
    #: Launch backup copies of straggling maps on idle trackers (Hadoop's
    #: mapred.map.tasks.speculative.execution; cf. Zaharia et al., OSDI'08,
    #: the paper's related work on MapReduce in virtualized environments).
    speculative_execution: bool = False
    #: A map is a straggler once it has run this multiple of the mean
    #: completed-map duration.
    speculative_slowdown: float = 1.5
    #: Fixed per-task startup cost (JVM launch stand-in), seconds.
    task_startup_s: float = C.TASK_STARTUP_S
    #: Fixed per-job submission/cleanup overhead, seconds.
    job_overhead_s: float = C.JOB_OVERHEAD_S
    #: TaskTracker heartbeat interval, seconds.
    heartbeat_s: float = C.HEARTBEAT_S
    #: Maximum concurrent shuffle fetch streams per reduce task.
    shuffle_parallel_copies: int = 5
    #: Bytes every TaskTracker localizes per job (job.jar + config + side
    #: files; a Mahout job jar is ~16 MB).  This is why tiny jobs get
    #: slower as the cluster grows — Fig. 6's scaling mechanism.
    job_localization_bytes: int = 16 * C.MiB
    #: Heartbeat threshold for declaring a TaskTracker dead: the JobTracker
    #: waits ``missed_heartbeats_dead * heartbeat_s`` after a worker VM
    #: fails before it reaps the tracker and reschedules its tasks
    #: (Hadoop's mapred.tasktracker.expiry.interval).
    missed_heartbeats_dead: int = 3
    #: Maximum attempts per task before the whole job is failed (Hadoop's
    #: mapred.map.max.attempts / mapred.reduce.max.attempts).
    max_task_retries: int = 4
    #: Base delay before re-queueing a failed task attempt; doubles each
    #: retry (capped exponential backoff).
    retry_backoff_s: float = 1.0
    #: Ceiling on the exponential retry backoff, seconds.
    retry_backoff_cap_s: float = 30.0
    #: A tracker that produced this many task failures is blacklisted for
    #: the rest of the job: its slots stop pulling work (Hadoop's
    #: mapred.max.tracker.failures).
    tracker_blacklist_failures: int = 3
    #: Delay between detecting a dead datanode and starting the background
    #: re-replication sweep (coalesces correlated failures into one sweep).
    replication_repair_delay_s: float = 5.0

    def __post_init__(self) -> None:
        if self.dfs_replication < 1:
            raise ConfigError("dfs.replication must be >= 1")
        if self.dfs_block_size < 1 * C.MiB:
            raise ConfigError("dfs.block.size must be >= 1 MiB")
        if self.map_tasks_maximum < 1 or self.reduce_tasks_maximum < 1:
            raise ConfigError("task slot maxima must be >= 1")
        if self.shuffle_parallel_copies < 1:
            raise ConfigError("shuffle_parallel_copies must be >= 1")
        if self.job_localization_bytes < 0:
            raise ConfigError("job_localization_bytes must be >= 0")
        if self.speculative_slowdown <= 1.0:
            raise ConfigError("speculative_slowdown must be > 1.0")
        for name in ("task_startup_s", "job_overhead_s", "heartbeat_s",
                     "retry_backoff_s", "retry_backoff_cap_s",
                     "replication_repair_delay_s"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.missed_heartbeats_dead < 1:
            raise ConfigError("missed_heartbeats_dead must be >= 1")
        if self.max_task_retries < 1:
            raise ConfigError("max_task_retries must be >= 1")
        if self.tracker_blacklist_failures < 1:
            raise ConfigError("tracker_blacklist_failures must be >= 1")

    def replace(self, **kwargs) -> "HadoopConfig":
        """Return a copy with the given fields changed (tuner entry point)."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class TopologySpec:
    """Declarative datacenter shape: ``racks × hosts_per_rack × vms_per_host``.

    The paper's testbed is ``TopologySpec(1, 2, 8)`` — one rack of two
    hosts, eight VMs each.  Single-rack topologies add no ToR/aggregation
    resources, so they are bit-identical to the flat two-host model.
    Parse the CLI form with :meth:`parse` (``"25x5x8"`` = 25 racks × 5
    hosts × 8 VMs = 1,000 VMs).
    """

    racks: int = 1
    hosts_per_rack: int = 2
    vms_per_host: int = 8
    #: Per-tier bandwidth overrides; ``None`` keeps the HostConfig /
    #: constants defaults.
    nic_bandwidth: "float | None" = None
    bridge_bandwidth: "float | None" = None
    tor_bandwidth: float = C.TOR_SWITCH_BPS
    agg_bandwidth: float = C.AGG_UPLINK_BPS

    def __post_init__(self) -> None:
        if self.racks < 1 or self.hosts_per_rack < 1 or self.vms_per_host < 1:
            raise ConfigError("racks, hosts_per_rack and vms_per_host "
                              "must all be >= 1")
        for name in ("tor_bandwidth", "agg_bandwidth"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    @property
    def n_hosts(self) -> int:
        return self.racks * self.hosts_per_rack

    @property
    def n_vms(self) -> int:
        return self.n_hosts * self.vms_per_host

    @property
    def multi_rack(self) -> bool:
        return self.racks > 1

    def rack_of_host(self, host_index: int) -> int:
        """Hosts are numbered contiguously within racks: host *i* lives
        in rack ``i // hosts_per_rack``."""
        if host_index < 0 or host_index >= self.n_hosts:
            raise ConfigError(f"host index {host_index} out of range "
                              f"(topology has {self.n_hosts} hosts)")
        return host_index // self.hosts_per_rack

    @classmethod
    def parse(cls, text: str, **overrides) -> "TopologySpec":
        """Parse the shared CLI form ``RxHxV`` (racks × hosts/rack ×
        VMs/host), e.g. ``"2x8x4"``."""
        parts = text.lower().split("x")
        if len(parts) != 3:
            raise ConfigError(
                f"topology {text!r} must be RxHxV (racks x hosts-per-rack "
                f"x vms-per-host), e.g. 2x8x4")
        try:
            racks, hosts, vms = (int(p) for p in parts)
        except ValueError:
            raise ConfigError(f"topology {text!r}: parts must be integers "
                              "(RxHxV, e.g. 2x8x4)") from None
        return cls(racks=racks, hosts_per_rack=hosts, vms_per_host=vms,
                   **overrides)

    def spec_str(self) -> str:
        return f"{self.racks}x{self.hosts_per_rack}x{self.vms_per_host}"

    def replace(self, **kwargs) -> "TopologySpec":
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class PlatformConfig:
    """Whole-platform layout: hosts, VM template, Hadoop config, NFS, seed.

    ``topology`` is the declarative multi-rack shape; when given it
    drives ``n_hosts`` (racks × hosts_per_rack) and the datacenter wires
    racks/ToR/aggregation accordingly.  Without it the platform is the
    paper's flat ``n_hosts`` testbed.
    """

    n_hosts: int = 2
    host: HostConfig = field(default_factory=HostConfig)
    vm: VMConfig = field(default_factory=VMConfig)
    hadoop: HadoopConfig = field(default_factory=HadoopConfig)
    nfs_bandwidth: float = C.NFS_BPS
    seed: int = 0
    trace: bool = True
    topology: "TopologySpec | None" = None

    def __post_init__(self) -> None:
        if self.topology is not None:
            object.__setattr__(self, "n_hosts", self.topology.n_hosts)
        if self.n_hosts < 1:
            raise ConfigError("n_hosts must be >= 1")
        if self.nfs_bandwidth <= 0:
            raise ConfigError("nfs_bandwidth must be positive")

    def replace(self, **kwargs) -> "PlatformConfig":
        return dataclasses.replace(self, **kwargs)
