"""Tests for the Grep and Pi example jobs and the analyser graphics."""

import math
import re

import pytest

from repro.config import PlatformConfig
from repro.errors import MonitorError
from repro.monitor import NmonMonitor
from repro.monitor.graphics import (render_cluster_heatmap,
                                    render_node_timeline, sparkline)
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads.examples_jobs import (estimate_pi, grep_jobs, pi_input,
                                           pi_job, run_grep)
from repro.workloads.wordcount import lines_as_records, line_record_sizeof

LINES = ["error: disk full", "warning: retry", "error: timeout",
         "info: ok", "error: disk full again"] * 4


def make(n=6, seed=3):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster("x", ClusterSpec.single_host(n))
    return platform, cluster


# --- grep ------------------------------------------------------------------

def test_grep_counts_and_sorts_matches():
    platform, cluster = make()
    platform.upload(cluster, "/logs", lines_as_records(LINES),
                    sizeof=line_record_sizeof, timed=False)
    output = run_grep(platform.runners[cluster.name], cluster,
                      "/logs", "/grep-out", r"error: (\w+)")
    # findall with one group returns the group.
    expected = {"disk": 8, "timeout": 4}
    as_counts = {match: -negcount for negcount, match in output}
    assert as_counts == expected
    # Sorted by descending frequency.
    neg_counts = [negcount for negcount, _m in output]
    assert neg_counts == sorted(neg_counts)


def test_grep_no_matches_gives_empty_output():
    platform, cluster = make()
    platform.upload(cluster, "/logs", lines_as_records(["nothing here"]),
                    sizeof=line_record_sizeof, timed=False)
    output = run_grep(platform.runners[cluster.name], cluster,
                      "/logs", "/none", r"absent-(\d+)")
    assert output == []


# --- pi --------------------------------------------------------------------------

def test_pi_estimator_converges():
    platform, cluster = make()
    records = pi_input(n_maps=8, points_per_map=20_000)
    platform.upload(cluster, "/pi-in", records, timed=False)
    job = pi_job("/pi-in", "/pi-out", n_maps=8)
    report = platform.run_job(cluster, job)
    output = platform.collect(cluster, report)
    estimate = estimate_pi(output)
    assert abs(estimate - math.pi) < 0.05
    assert report.n_maps == 8


def test_pi_deterministic_across_runs():
    def run():
        platform, cluster = make(seed=4)
        platform.upload(cluster, "/pi-in", pi_input(4, 5000), timed=False)
        report = platform.run_job(cluster, pi_job("/pi-in", "/pi-out", 4))
        return estimate_pi(platform.collect(cluster, report))

    assert run() == run()


# --- analyser graphics ------------------------------------------------------------

def test_sparkline_scales():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] == " " and line[-1] == "█"
    assert sparkline([0.0, 0.0]) == "  "
    with pytest.raises(MonitorError):
        sparkline([])


def test_node_timeline_and_heatmap_render():
    platform, cluster = make()
    platform.upload(cluster, "/logs", lines_as_records(LINES * 50),
                    sizeof=lambda r: (len(r[1]) + 1) * 100, timed=False)
    monitor = NmonMonitor(cluster.vms, interval=1.0)
    monitor.start()
    from repro.workloads.wordcount import wordcount_job
    platform.run_job(cluster, wordcount_job("/logs", "/wc", n_reduces=2,
                                            volume_scale=100))
    monitor.stop()
    timeline = render_node_timeline(monitor.node(cluster.workers[0].name))
    assert "cpu" in timeline and "net" in timeline and "|" in timeline
    heatmap = render_cluster_heatmap(monitor, metric="cpu_util")
    assert heatmap.count("\n") == len(cluster.vms)
    assert "cluster heatmap" in heatmap


def test_heatmap_requires_samples():
    platform, cluster = make()
    monitor = NmonMonitor(cluster.vms)
    with pytest.raises(MonitorError):
        render_cluster_heatmap(monitor)
