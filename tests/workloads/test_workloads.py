"""Integration tests for the four Table I benchmark workloads."""



from repro import constants as C
from repro.config import PlatformConfig
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads import (run_dfsio, run_mrbench, run_terasort,
                             teravalidate, wordcount_job)
from repro.workloads.mrbench import mrbench_input, mrbench_sizeof
from repro.workloads.wordcount import lines_as_records, line_record_sizeof


def make(n=8, layout="normal", seed=4):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    placement = (ClusterSpec.single_host(n) if layout == "normal"
                 else ClusterSpec.packed(n, hosts=2))
    cluster = platform.provision_cluster("w", placement)
    return platform, cluster


# --- wordcount -------------------------------------------------------------

def test_wordcount_paper_semantics_no_combiner():
    job = wordcount_job("/in", "/out")
    assert job.combiner is None  # the paper's description has no combiner


def test_wordcount_counts_correctly():
    platform, cluster = make()
    lines = ["a b a", "c a"]
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=line_record_sizeof, timed=False)
    report = platform.run_job(cluster, wordcount_job("/in", "/out"))
    assert dict(platform.collect(cluster, report)) == {"a": 3, "b": 1, "c": 1}


# --- mrbench ---------------------------------------------------------------------

def test_mrbench_identity_roundtrip():
    platform, cluster = make()
    runner = platform.runner(cluster)
    report = run_mrbench(runner, cluster, n_maps=3, n_reduces=2)
    assert report.n_maps == 3
    assert report.n_reduces == 2
    out = runner.read_output(report)
    assert len(out) == len(mrbench_input())
    assert {k for k, _v in out} == {str(i + 1) for i in range(100)}


def test_mrbench_input_staged_once():
    platform, cluster = make()
    runner = platform.runner(cluster)
    run_mrbench(runner, cluster, 1, 1, run_index=0)
    run_mrbench(runner, cluster, 1, 1, run_index=1)
    assert cluster.namenode.exists("/mrbench/input")
    assert mrbench_sizeof((0, "42")) == 3


# --- terasort ---------------------------------------------------------------------

def test_terasort_sorts_and_validates():
    platform, cluster = make()
    runner = platform.runner(cluster)
    result = run_terasort(runner, cluster, 20 * C.MB, n_reduces=4,
                          volume_scale=64)
    assert result.validated
    assert result.generation_time_s > 0
    assert result.sort_time_s > 0
    # All records survive the sort.
    total = sum(len(cluster.dfs.peek_records(p))
                for p in result.sort_report.output_paths)
    gen_total = sum(len(cluster.dfs.peek_records(p))
                    for p in result.gen_report.output_paths)
    assert total == gen_total > 0


def test_teravalidate_detects_disorder():
    good = [[(b"a", 1), (b"b", 2)], [(b"c", 3)]]
    assert teravalidate(good)
    unsorted_part = [[(b"b", 1), (b"a", 2)]]
    assert not teravalidate(unsorted_part)
    bad_boundary = [[(b"c", 1)], [(b"a", 2)]]
    assert not teravalidate(bad_boundary)
    assert teravalidate([[], [(b"a", 1)]])


def test_terasort_larger_data_takes_longer():
    platform, cluster = make(seed=6)
    runner = platform.runner(cluster)
    small = run_terasort(runner, cluster, 10 * C.MB, n_reduces=2,
                         seed_tag="s", volume_scale=64)
    large = run_terasort(runner, cluster, 80 * C.MB, n_reduces=2,
                         seed_tag="l", volume_scale=64)
    assert large.sort_time_s > small.sort_time_s


# --- dfsio -------------------------------------------------------------------------

def test_dfsio_read_faster_than_write():
    platform, cluster = make(n=16)
    result = run_dfsio(cluster, n_files=6, file_bytes=32 * C.MB)
    assert result.read_throughput_bps > result.write_throughput_bps
    assert result.total_bytes == 6 * 32 * C.MB


def test_dfsio_cross_domain_writes_slower():
    results = {}
    for layout in ("normal", "cross-domain"):
        platform, cluster = make(n=16, layout=layout, seed=8)
        results[layout] = run_dfsio(cluster, n_files=6,
                                    file_bytes=32 * C.MB, tag=layout)
    assert (results["cross-domain"].write_throughput_bps
            < results["normal"].write_throughput_bps)
