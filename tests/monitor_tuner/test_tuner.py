"""Unit tests for the MapReduce Tuner and its rules."""

import pytest

from repro.config import PlatformConfig
from repro.errors import TunerError
from repro.monitor import NmonAnalyser, NmonMonitor
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.tuner import (ConsolidateCrossDomainRule, MapReduceTuner,
                         Recommendation, IncreaseSlotsWhenBacklogRule,
                         IncreaseSlotsWhenCpuIdleRule,
                         ReduceSlotsWhenSaturatedRule)
from repro.workloads.wordcount import lines_as_records, wordcount_job


def make(layout="normal", n=6, seed=2):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    placement = (ClusterSpec.single_host(n) if layout == "normal"
                 else ClusterSpec.packed(n, hosts=2))
    cluster = platform.provision_cluster("tn", placement)
    monitor = NmonMonitor(cluster.vms, interval=1.0)
    analyser = NmonAnalyser(monitor)
    return platform, cluster, monitor, analyser


def test_tuner_requires_rules():
    platform, cluster, _monitor, analyser = make()
    with pytest.raises(TunerError):
        MapReduceTuner(cluster, analyser, rules=[])


def test_increase_slots_when_idle():
    platform, cluster, monitor, analyser = make()
    for _ in range(3):
        monitor.sample_now(platform.sim.now)  # all-idle samples
    tuner = MapReduceTuner(cluster, analyser,
                           rules=[IncreaseSlotsWhenCpuIdleRule()])
    before = cluster.config.map_tasks_maximum
    recommendation = tuner.step()
    assert recommendation is not None
    assert recommendation.kind == "reconfigure"
    assert cluster.config.map_tasks_maximum == before + 1
    assert tuner.log and tuner.log[-1].applied


def test_reduce_slots_when_saturated():
    platform, cluster, monitor, analyser = make()
    # Saturate every worker VCPU with long tasks, then sample.
    for vm in cluster.vms:
        vm.compute(500.0)
        vm.compute(500.0)
    platform.sim.run(until=5.0)
    for _ in range(3):
        monitor.sample_now(platform.sim.now)
    tuner = MapReduceTuner(cluster, analyser,
                           rules=[ReduceSlotsWhenSaturatedRule()])
    before = cluster.config.map_tasks_maximum
    recommendation = tuner.step()
    assert recommendation is not None
    assert cluster.config.map_tasks_maximum == before - 1


class _StubScheduler:
    """Only what IncreaseSlotsWhenBacklogRule reads: live queue depth."""

    def __init__(self, slots, backlog):
        self._slots = slots
        self._backlog = backlog

    def total_slots(self, kind):
        return self._slots

    def backlog(self, kind):
        return self._backlog


def test_increase_slots_on_deep_backlog_with_idle_cpu():
    platform, cluster, monitor, analyser = make()
    for _ in range(3):
        monitor.sample_now(platform.sim.now)  # all-idle samples
    rule = IncreaseSlotsWhenBacklogRule(_StubScheduler(slots=8, backlog=40))
    tuner = MapReduceTuner(cluster, analyser, rules=[rule])
    before = cluster.config.map_tasks_maximum
    recommendation = tuner.step()
    assert recommendation is not None
    assert recommendation.kind == "reconfigure"
    assert cluster.config.map_tasks_maximum == before + 1


def test_backlog_rule_abstains_on_shallow_backlog():
    platform, cluster, monitor, analyser = make()
    for _ in range(3):
        monitor.sample_now(platform.sim.now)
    rule = IncreaseSlotsWhenBacklogRule(_StubScheduler(slots=8, backlog=3))
    assert rule.evaluate(cluster, analyser, analyser.bottleneck()) is None


def test_backlog_rule_abstains_when_cpu_is_the_bottleneck():
    platform, cluster, monitor, analyser = make()
    for vm in cluster.vms:
        vm.compute(500.0)
        vm.compute(500.0)
    platform.sim.run(until=5.0)
    for _ in range(3):
        monitor.sample_now(platform.sim.now)
    rule = IncreaseSlotsWhenBacklogRule(_StubScheduler(slots=8, backlog=40))
    assert rule.evaluate(cluster, analyser, analyser.bottleneck()) is None


def test_consolidation_migrates_cross_domain_cluster():
    platform, cluster, monitor, analyser = make(layout="cross-domain", n=6)
    assert cluster.cross_domain
    # Generate sustained cross-host traffic so the NIC/netback shows busy.
    dc = platform.datacenter
    a = cluster.workers[0]
    b = next(vm for vm in cluster.workers if vm.host is not a.host)
    dc.fabric.transfer(a.node, b.node, 2e9)
    platform.sim.run(until=20.0)
    monitor.sample_now(platform.sim.now)
    tuner = MapReduceTuner(cluster, analyser,
                           rules=[ConsolidateCrossDomainRule(
                               net_busy_threshold=0.3)])
    recommendation = tuner.recommend()
    assert recommendation is not None
    assert recommendation.kind == "migrate"
    tuner.apply(recommendation)
    assert not cluster.cross_domain


def test_consolidation_noop_on_normal_cluster():
    platform, cluster, monitor, analyser = make(layout="normal")
    monitor.sample_now(platform.sim.now)
    rule = ConsolidateCrossDomainRule()
    report = analyser.bottleneck([], now=1.0)
    assert rule.evaluate(cluster, analyser, report) is None


def test_apply_unknown_kind_raises():
    platform, cluster, monitor, analyser = make()
    monitor.sample_now(platform.sim.now)
    tuner = MapReduceTuner(cluster, analyser)
    with pytest.raises(TunerError):
        tuner.apply(Recommendation(rule="x", kind="teleport", reason="?"))


def test_tuner_closed_loop_improves_underprovisioned_cluster():
    """End-to-end Fig. 1 loop: monitor -> tune (more slots) -> faster job."""
    from repro.config import HadoopConfig

    def run_once(tune: bool) -> float:
        platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=21))
        cluster = platform.provision_cluster(
            "loop", ClusterSpec.single_host(4),
            hadoop_config=HadoopConfig(map_tasks_maximum=1))
        lines = ["omega psi chi " * 30] * 1500
        platform.upload(cluster, "/in", lines_as_records(lines),
                        sizeof=lambda r: (len(r[1]) + 1) * 60, timed=False)
        monitor = NmonMonitor(cluster.vms, interval=1.0)
        analyser = NmonAnalyser(monitor)
        job = wordcount_job("/in", "/warm", n_reduces=2, volume_scale=60)
        monitor.start()
        platform.run_job(cluster, job)
        monitor.stop()
        if tune:
            tuner = MapReduceTuner(
                cluster, analyser,
                rules=[IncreaseSlotsWhenCpuIdleRule(max_slots=4)])
            tuner.step()
        job2 = wordcount_job("/in", "/cold", n_reduces=2, volume_scale=60)
        return platform.run_job(cluster, job2).elapsed

    assert run_once(tune=True) < run_once(tune=False)
