"""Round-trip and malformed-input tests for nmon-format export/parsing."""

import pytest

from repro.errors import MonitorError
from repro.monitor.export import parse_nmon, write_nmon
from repro.monitor.nmon import NmonSample, NodeSeries


def series(n=3, vm="vm-x"):
    s = NodeSeries(vm)
    for i in range(n):
        s.samples.append(NmonSample(
            time=2.5 * i, vm=vm, cpu_util=0.1 * i, memory_fraction=0.5,
            disk_bytes_delta=4096.0 * i, net_tx_delta=100.0 * i,
            net_rx_delta=200.0 * i, activity=i % 2))
    return s


def test_roundtrip_preserves_every_field():
    original = series(5)
    parsed = parse_nmon(write_nmon(original))
    assert parsed.vm == original.vm
    assert len(parsed.samples) == 5
    for a, b in zip(original.samples, parsed.samples):
        assert b.time == pytest.approx(a.time, abs=1e-3)
        assert b.cpu_util == pytest.approx(a.cpu_util, abs=1e-4)
        assert b.memory_fraction == pytest.approx(a.memory_fraction,
                                                  abs=1e-4)
        assert b.disk_bytes_delta == pytest.approx(a.disk_bytes_delta)
        assert b.net_tx_delta == pytest.approx(a.net_tx_delta)
        assert b.net_rx_delta == pytest.approx(a.net_rx_delta)
        assert b.activity == a.activity


def test_declared_sample_count_roundtrips():
    text = write_nmon(series(4))
    assert "AAA,samples,4" in text
    assert len(parse_nmon(text).samples) == 4


def test_blank_lines_and_indentation_are_tolerated():
    text = write_nmon(series(3))
    padded = "\n\n" + text.replace("\n", "\n\n") + "   \n"
    assert len(parse_nmon(padded).samples) == 3


def test_missing_proc_section_defaults_activity_to_zero():
    # Real nmon captures don't always include the process section.
    text = "".join(line + "\n" for line in
                   write_nmon(series(3)).splitlines()
                   if not line.startswith("PROC,"))
    parsed = parse_nmon(text)
    assert [s.activity for s in parsed.samples] == [0, 0, 0]


def test_missing_host_header_raises():
    text = write_nmon(series(2)).replace("AAA,host,vm-x\n", "")
    with pytest.raises(MonitorError, match="AAA,host"):
        parse_nmon(text)


def test_missing_required_section_names_the_snapshot():
    text = write_nmon(series(2)).replace("MEM,T0002,50.00\n", "")
    with pytest.raises(MonitorError, match="T0002"):
        parse_nmon(text)


def test_sample_count_mismatch_raises():
    text = write_nmon(series(3)).replace("AAA,samples,3", "AAA,samples,7")
    with pytest.raises(MonitorError, match="declares 7"):
        parse_nmon(text)


def test_malformed_sample_count_raises():
    text = write_nmon(series(2)).replace("AAA,samples,2", "AAA,samples,two")
    with pytest.raises(MonitorError, match="malformed"):
        parse_nmon(text)
