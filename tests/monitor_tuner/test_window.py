"""RollingWindow: bounded, O(1)-per-sample view over the nmon stream."""

import pytest

from repro.config import PlatformConfig
from repro.monitor.nmon import NmonSample
from repro.monitor.window import RollingWindow
from repro.platform import ClusterSpec, VHadoopPlatform


class StubMonitor:
    """The slice of NmonMonitor a window needs: interval + listeners."""

    def __init__(self, interval=1.0):
        self.interval = interval
        self.listeners = []

    def add_listener(self, callback):
        self.listeners.append(callback)

    def remove_listener(self, callback):
        self.listeners.remove(callback)

    def emit(self, sample):
        for callback in list(self.listeners):
            callback(sample)


def sample(t, vm="vm1", cpu=0.5, disk=0.0, tx=0.0, rx=0.0, activity=1):
    return NmonSample(time=t, vm=vm, cpu_util=cpu, memory_fraction=0.5,
                      disk_bytes_delta=disk, net_tx_delta=tx,
                      net_rx_delta=rx, activity=activity)


def make(seconds=10.0, interval=1.0):
    monitor = StubMonitor(interval=interval)
    return monitor, RollingWindow(monitor, seconds)


def test_rejects_nonpositive_span():
    for bad in (0.0, -3.0):
        with pytest.raises(ValueError):
            RollingWindow(StubMonitor(), bad)


def test_eviction_bounds_the_window():
    monitor, window = make(seconds=10.0)
    for t in range(20):
        monitor.emit(sample(float(t), cpu=t / 20.0))
    # At now=19 the cutoff is 9: samples 9..19 survive.
    assert window.n_samples("vm1") == 11
    kept = [t / 20.0 for t in range(9, 20)]
    assert window.summary("vm1").cpu_mean == pytest.approx(
        sum(kept) / len(kept))


def test_running_sums_match_a_full_recompute():
    monitor, window = make(seconds=7.0)
    pushed = [sample(float(t), cpu=(t * 7 % 10) / 10.0, disk=100.0 * t,
                     tx=3.0 * t, rx=2.0 * t, activity=t % 4)
              for t in range(15)]
    for s in pushed:
        monitor.emit(s)
    kept = [s for s in pushed if s.time >= 15 - 1 - 7]
    summary = window.summary("vm1")
    assert summary.n_samples == len(kept)
    assert summary.cpu_mean == pytest.approx(
        sum(s.cpu_util for s in kept) / len(kept))
    assert summary.disk_bytes == pytest.approx(
        sum(s.disk_bytes_delta for s in kept))
    assert summary.net_bytes == pytest.approx(
        sum(s.net_tx_delta + s.net_rx_delta for s in kept))
    assert summary.activity_mean == pytest.approx(
        sum(s.activity for s in kept) / len(kept))


def test_advance_is_monotonic():
    monitor, window = make(seconds=4.0)
    monitor.emit(sample(0.0))
    monitor.emit(sample(5.0))           # cutoff 1.0 evicts the t=0 sample
    assert window.n_samples("vm1") == 1
    window.advance(3.0)                 # going backwards is a no-op
    assert window._now == 5.0
    assert window.n_samples("vm1") == 1


def test_span_and_rates():
    monitor, window = make(seconds=10.0, interval=2.0)
    monitor.emit(sample(4.0, disk=100.0, tx=30.0, rx=20.0))
    summary = window.summary("vm1")
    # A single sample covers (at least) one monitor interval.
    assert summary.span_s == 2.0
    assert summary.disk_rate == pytest.approx(50.0)
    assert summary.net_rate == pytest.approx(25.0)
    monitor.emit(sample(8.0, disk=100.0))
    summary = window.summary("vm1")
    assert summary.span_s == 4.0
    assert summary.disk_bytes == 200.0
    assert summary.disk_rate == pytest.approx(50.0)


def test_empty_summary_is_all_zeros():
    monitor, window = make()
    summary = window.summary("ghost")
    assert summary.n_samples == 0 and summary.span_s == 0.0
    assert summary.disk_rate == 0.0 and summary.net_rate == 0.0


def test_facade_reuses_windows_and_feeds_them_from_the_monitor():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=1, seed=0))
    cluster = platform.provision_cluster("win", ClusterSpec.single_host(2))
    telemetry = cluster.telemetry
    window = telemetry.rolling_window(10.0)
    assert telemetry.rolling_window(10.0) is window
    assert telemetry.rolling_window(5.0) is not window

    telemetry.monitor.sample_now(1.0)
    names = sorted(vm.name for vm in telemetry.vms)
    assert window.vms() == names
    assert all(window.n_samples(vm) == 1 for vm in names)

    window.detach()
    telemetry.monitor.sample_now(2.0)
    assert all(window.n_samples(vm) == 1 for vm in names)
    # The other window stayed attached.
    assert all(telemetry.rolling_window(5.0).n_samples(vm) == 2
               for vm in names)
