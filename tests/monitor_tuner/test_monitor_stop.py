"""stop() semantics: a stopped monitor leaves nothing parked in the sim."""

from repro.config import PlatformConfig
from repro.platform import ClusterSpec, VHadoopPlatform


def make_cluster(seed=7):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster("stop", ClusterSpec.single_host(4))
    return platform, cluster


def test_stopped_monitor_emits_no_further_samples():
    platform, cluster = make_cluster()
    monitor = cluster.telemetry.start_monitor(interval=2.0)
    platform.sim.run(until=5.0)
    cluster.telemetry.stop_monitor()
    count = len(monitor.all_samples())
    assert count == 3 * len(cluster.vms)  # t=0, 2, 4
    platform.sim.run(until=50.0)
    assert len(monitor.all_samples()) == count


def test_stop_withdraws_pending_wakeup_from_the_queue():
    # Before the fix, the cancelled sampler's timeout stayed in the event
    # queue: a drain run() would advance the clock to the next interval
    # boundary even though nothing observable happened.
    platform, cluster = make_cluster()
    cluster.telemetry.start_monitor(interval=100.0)
    platform.sim.run(until=1.0)
    cluster.telemetry.stop_monitor()
    platform.sim.run()  # drain: must not jump to t=100
    assert platform.sim.now < 100.0


def test_stop_is_idempotent_and_restartable():
    platform, cluster = make_cluster()
    telemetry = cluster.telemetry
    monitor = telemetry.start_monitor(interval=1.0)
    platform.sim.run(until=2.5)
    telemetry.stop_monitor()
    telemetry.stop_monitor()  # no-op
    before = len(monitor.all_samples())
    telemetry.start_monitor()
    platform.sim.run(until=4.5)
    telemetry.stop_monitor()
    assert len(monitor.all_samples()) > before


def test_samples_mirror_into_metrics_gauges():
    platform, cluster = make_cluster()
    telemetry = cluster.telemetry
    telemetry.start_monitor(interval=1.0)
    platform.sim.run(until=3.0)
    telemetry.stop_monitor()
    name = cluster.vms[0].name
    assert telemetry.metrics.get("vm.cpu.utilization",
                                 {"vm": name}) is not None
    value = telemetry.metrics.value("vm.cpu.utilization", {"vm": name})
    assert 0.0 <= value <= 1.0
