"""Unit tests for the nmon monitor and analyser."""

import pytest

from repro import constants as C
from repro.config import PlatformConfig
from repro.errors import MonitorError
from repro.monitor import NmonAnalyser, NmonMonitor
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)


def make_busy_cluster(seed=12):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster("m", ClusterSpec.single_host(6))
    lines = ["alpha beta gamma delta " * 20] * 2000
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=lambda r: (len(r[1]) + 1) * 30, timed=False)
    return platform, cluster


def test_monitor_validation():
    platform, cluster = make_busy_cluster()
    with pytest.raises(MonitorError):
        NmonMonitor([])
    with pytest.raises(MonitorError):
        NmonMonitor(cluster.vms, interval=0)


def test_monitor_samples_on_interval():
    platform, cluster = make_busy_cluster()
    monitor = NmonMonitor(cluster.vms, interval=2.0)
    monitor.start()
    job = wordcount_job("/in", "/out", n_reduces=2, volume_scale=30)
    platform.run_job(cluster, job)
    monitor.stop()
    series = monitor.node(cluster.workers[0].name)
    assert len(series) >= 5
    times = series.column("time")
    assert times == sorted(times)
    # sampling interval respected
    deltas = [b - a for a, b in zip(times, times[1:])]
    assert all(d == pytest.approx(2.0) for d in deltas)


def test_monitor_observes_activity_and_io():
    platform, cluster = make_busy_cluster()
    monitor = NmonMonitor(cluster.vms, interval=1.0)
    monitor.start()
    job = wordcount_job("/in", "/out", n_reduces=2, volume_scale=30)
    platform.run_job(cluster, job)
    monitor.stop()
    samples = monitor.all_samples()
    assert any(s.cpu_util > 0 for s in samples)
    assert any(s.disk_bytes_delta > 0 for s in samples)
    assert any(s.net_tx_delta > 0 for s in samples)
    assert any(s.activity > 0 for s in samples)
    assert all(0 <= s.memory_fraction <= 1 for s in samples)


def test_monitor_unknown_node():
    platform, cluster = make_busy_cluster()
    monitor = NmonMonitor(cluster.vms)
    with pytest.raises(MonitorError):
        monitor.node("ghost")


def test_analyser_summaries_and_bottleneck():
    platform, cluster = make_busy_cluster()
    monitor = NmonMonitor(cluster.vms, interval=1.0)
    monitor.start()
    job = wordcount_job("/in", "/out", n_reduces=2, volume_scale=30)
    platform.run_job(cluster, job)
    monitor.stop()
    analyser = NmonAnalyser(monitor)
    summary = analyser.summarize(cluster.workers[0].name)
    assert summary.n_samples > 0
    assert 0 <= summary.cpu_mean <= summary.cpu_peak <= 1

    dc = platform.datacenter
    shared = [dc.machines[0].cpu, dc.machines[0].net.nic,
              dc.machines[0].net.netback, dc.image_store.node.vnic]
    report = analyser.bottleneck(shared, now=platform.sim.now)
    assert report.busiest_resource in {r.name for r in shared}
    assert len(report.top(2)) == 2


def test_analyser_finds_nfs_or_network_bottleneck():
    # The paper's conclusion: network I/O and NFS disk I/O are the main
    # bottlenecks of an I/O-heavy wordcount on the platform.
    platform, cluster = make_busy_cluster()
    monitor = NmonMonitor(cluster.vms, interval=1.0)
    monitor.start()
    job = wordcount_job("/in", "/out", n_reduces=4, volume_scale=80)
    platform.run_job(cluster, job)
    monitor.stop()
    analyser = NmonAnalyser(monitor)
    dc = platform.datacenter
    shared = []
    for machine in dc.machines:
        shared.extend([machine.cpu, machine.net.nic, machine.net.netback,
                       machine.net.bridge])
    shared.append(dc.image_store.node.vnic)
    report = analyser.bottleneck(shared, now=platform.sim.now)
    assert ("nfs" in report.busiest_resource
            or ".nic" in report.busiest_resource
            or ".netback" in report.busiest_resource)


def test_analyser_no_samples_raises():
    platform, cluster = make_busy_cluster()
    monitor = NmonMonitor(cluster.vms)
    analyser = NmonAnalyser(monitor)
    with pytest.raises(MonitorError):
        analyser.summarize(cluster.workers[0].name)


def test_imbalance_zero_when_idle():
    platform, cluster = make_busy_cluster()
    monitor = NmonMonitor(cluster.vms, interval=1.0)
    for _ in range(3):
        monitor.sample_now(platform.sim.now)
    analyser = NmonAnalyser(monitor)
    assert analyser.imbalance() == 0.0
