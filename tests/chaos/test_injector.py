"""ChaosInjector unit tests: every fault kind, heals, and determinism."""

import pytest

from repro.chaos import ChaosInjector, Fault, FaultPlan
from repro.config import PlatformConfig
from repro.errors import ConfigError
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.virt import VMState


def make(seed=7, n=8):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed,
                                              trace=True))
    cluster = platform.provision_cluster("chaos",
                                         ClusterSpec.packed(n, hosts=2))
    return platform, cluster


def inject(platform, cluster, plan, until):
    injector = ChaosInjector(cluster, plan)
    injector.start()
    platform.sim.run(until=until)
    return injector


def test_start_arms_recovery():
    platform, cluster = make()
    assert cluster.recovery is None
    injector = ChaosInjector(cluster, FaultPlan())
    injector.start()
    assert cluster.recovery is not None


def test_vm_crash_then_automatic_rejoin():
    platform, cluster = make()
    victim = cluster.workers[0]
    plan = FaultPlan().add(Fault(at=1.0, kind="vm.crash",
                                 target=victim.name, duration=8.0))
    injector = inject(platform, cluster, plan, until=2.0)
    assert victim.state is VMState.FAILED
    platform.sim.run(until=40.0)
    assert victim.state is VMState.RUNNING
    assert any(t.vm is victim for t in cluster.trackers)
    assert any(dn.vm is victim for dn in cluster.datanodes)
    actions = [(action, target) for _t, action, target
               in injector.report.timeline]
    assert actions == [("vm.crash", victim.name), ("rejoin", victim.name)]


def test_host_crash_kills_every_resident_worker():
    platform, cluster = make()
    doomed = cluster.datacenter.machines[-1].name
    residents = [vm for vm in cluster.workers if vm.host.name == doomed]
    assert residents  # cross-domain placement spans both hosts
    plan = FaultPlan().add(Fault(at=1.0, kind="host.crash", target=doomed))
    injector = inject(platform, cluster, plan, until=2.0)
    assert all(vm.state is VMState.FAILED for vm in residents)
    assert injector.report.timeline == [(1.0, "host.crash", doomed)]


def test_host_crash_without_residents_is_recorded_noop():
    # Overlapping plans are legal: crashing a host whose workers are all
    # already down changes nothing and must not error out mid-run.
    platform, cluster = make()
    doomed = cluster.datacenter.machines[-1].name
    for vm in list(cluster.workers):
        if vm.host.name == doomed:
            vm.fail()
    injector = ChaosInjector(cluster, FaultPlan().add(
        Fault(at=1.0, kind="host.crash", target=doomed)))
    platform.sim.run_until(injector.start())
    assert [(kind, target) for _, kind, target in injector.report.timeline
            ] == [("host.crash.noop", doomed)]


def test_host_crash_on_unknown_host_rejected():
    platform, cluster = make()
    done = ChaosInjector(cluster, FaultPlan().add(
        Fault(at=1.0, kind="host.crash", target="no-such-host"))).start()
    with pytest.raises(ConfigError):
        platform.sim.run_until(done)


def test_vm_crash_on_already_failed_vm_is_recorded_noop():
    platform, cluster = make()
    victim = cluster.workers[0]
    victim.fail()
    injector = ChaosInjector(cluster, FaultPlan().add(
        Fault(at=1.0, kind="vm.crash", target=victim.name, duration=5.0)))
    platform.sim.run_until(injector.start())
    assert [(kind, target) for _, kind, target in injector.report.timeline
            ] == [("vm.crash.noop", victim.name)]
    # The no-op schedules no heal: the VM stays down.
    platform.sim.run(until=platform.sim.now + 30.0)
    assert victim.name not in [vm.name for vm in cluster.workers
                               if vm.state.name == "RUNNING"]


def test_unknown_worker_target_rejected():
    platform, cluster = make()
    done = ChaosInjector(cluster, FaultPlan().add(
        Fault(at=1.0, kind="vm.crash", target="no-such-vm"))).start()
    with pytest.raises(ConfigError):
        platform.sim.run_until(done)


def test_net_degrade_divides_bandwidth_then_heals():
    platform, cluster = make()
    host = cluster.datacenter.fabric.hosts["pm1"]
    before = host.nic.capacity
    plan = FaultPlan().add(Fault(at=1.0, kind="net.degrade", target="pm1",
                                 factor=4.0, duration=5.0))
    injector = inject(platform, cluster, plan, until=2.0)
    assert host.nic.capacity == pytest.approx(before / 4.0)
    platform.sim.run(until=10.0)
    assert host.nic.capacity == pytest.approx(before)
    actions = [action for _t, action, _tgt in injector.report.timeline]
    assert actions == ["net.degrade", "net.heal"]


def test_net_partition_stalls_but_keeps_flows_defined():
    platform, cluster = make()
    host = cluster.datacenter.fabric.hosts["pm0"]
    before = host.nic.capacity
    plan = FaultPlan().add(Fault(at=1.0, kind="net.partition",
                                 target="pm0", duration=3.0))
    inject(platform, cluster, plan, until=2.0)
    assert 0 < host.nic.capacity < before / 1e8
    platform.sim.run(until=10.0)
    assert host.nic.capacity == pytest.approx(before)


def test_net_fault_requires_host_target():
    platform, cluster = make()
    done = ChaosInjector(cluster, FaultPlan().add(
        Fault(at=1.0, kind="net.degrade", target=cluster.workers[0].name,
              factor=2.0))).start()
    with pytest.raises(ConfigError):
        platform.sim.run_until(done)


def test_disk_slow_sets_and_clears_slowdown():
    platform, cluster = make()
    victim = cluster.workers[1]
    plan = FaultPlan().add(Fault(at=1.0, kind="disk.slow",
                                 target=victim.name, factor=3.0,
                                 duration=4.0))
    inject(platform, cluster, plan, until=2.0)
    assert victim.disk_slowdown == 3.0
    platform.sim.run(until=10.0)
    assert victim.disk_slowdown == 1.0


def test_report_digest_deterministic_across_runs():
    def run_once():
        platform, cluster = make(seed=3)
        victim = cluster.workers[0].name
        plan = (FaultPlan(name="det")
                .add(Fault(at=1.0, kind="vm.crash", target=victim,
                           duration=6.0))
                .add(Fault(at=2.0, kind="disk.slow",
                           target=cluster.workers[1].name, factor=2.0,
                           duration=2.0)))
        injector = ChaosInjector(cluster, plan)
        injector.start()
        platform.sim.run(until=30.0)
        return injector.report

    one, two = run_once(), run_once()
    assert one.timeline == two.timeline
    assert one.digest() == two.digest()
    assert one.plan_digest == two.plan_digest


def test_injector_validates_directly_built_plan_at_start():
    """A plan whose fault list was built directly (bypassing ``add()``'s
    validation) — or grown after the injector was constructed — must be
    rejected when injection starts, not trusted (regression: satellite
    fix, PR 8)."""
    platform, cluster = make()
    plan = FaultPlan(name="sneaky")
    injector = ChaosInjector(cluster, plan)
    plan.faults.append(Fault(at=float("nan"), kind="vm.crash",
                             target=cluster.workers[0].name))
    injector.start()
    with pytest.raises(ConfigError):
        platform.sim.run(until=1.0)
