"""Property: counters are exact under retries, speculation, and chaos.

However task attempts are killed, retried, speculatively duplicated, or
preempted, the job counters must equal those of an undisturbed run —
recovery must never double-count (re-run map attempts merge with
``count=False``; the reduce commit token guarantees exactly one attempt
per partition counts).  The undisturbed run itself is anchored against
the pure-functional :class:`LocalJobRunner` ground truth.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.chaos import ChaosInjector, Fault, FaultPlan
from repro.config import HadoopConfig, PlatformConfig
from repro.mapreduce import LocalJobRunner
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads.wordcount import (line_record_sizeof, lines_as_records,
                                       wordcount_job)

LINES = ["alef bet gimel dalet he vav", "bet gimel dalet",
         "alef zayin het tet vav vav"] * 40
RECORDS = lines_as_records(LINES)

_SLOW = dict(deadline=None,
             suppress_health_check=[HealthCheck.too_slow])

#: Clean-run baseline, computed once: (elapsed, "job" counter group).
_BASELINE = None


def _job():
    return wordcount_job("/in", "/out", n_reduces=2)


def _make(seed: int, speculation: bool):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed,
                                              trace=True))
    cluster = platform.provision_cluster(
        "prop", ClusterSpec.packed(8, hosts=2),
        hadoop_config=HadoopConfig(dfs_replication=2,
                                   speculative_execution=speculation))
    platform.upload(cluster, "/in", RECORDS, sizeof=line_record_sizeof,
                    timed=False)
    return platform, cluster


def _baseline():
    global _BASELINE
    if _BASELINE is None:
        platform, cluster = _make(seed=0, speculation=False)
        report = platform.run_job(cluster, _job())
        _BASELINE = (report.elapsed,
                     dict(report.counters.as_dict()["job"]))
    return _BASELINE


def test_baseline_counters_match_local_runner():
    """The undisturbed simulated run agrees with the functional
    reference on every counter the LocalJobRunner maintains."""
    local = LocalJobRunner()
    local.run(_job(), RECORDS)
    _elapsed, counters = _baseline()
    assert counters["map_input_records"] == len(RECORDS)
    assert counters["map_output_records"] == local.counters.get(
        "job", "map_output_records")
    assert counters["reduce_output_records"] == local.counters.get(
        "job", "reduce_output_records")


@settings(max_examples=6, **_SLOW)
@given(seed=st.integers(0, 2**16), fraction=st.floats(0.05, 0.95),
       speculation=st.booleans())
def test_counters_exact_under_chaos(seed, fraction, speculation):
    elapsed, expected = _baseline()
    platform, cluster = _make(seed, speculation)
    runner = platform.runner(cluster)
    victim = cluster.workers[seed % len(cluster.workers)]
    plan = FaultPlan(name="prop").add(
        Fault(at=fraction * elapsed, kind="vm.crash", target=victim.name))
    done = runner.submit(_job())
    ChaosInjector(cluster, plan).start()
    platform.sim.run_until(done)
    assert dict(done.value.counters.as_dict()["job"]) == expected


@settings(max_examples=4, **_SLOW)
@given(seed=st.integers(0, 2**16))
def test_counters_exact_with_speculation_clean(seed):
    _elapsed, expected = _baseline()
    platform, cluster = _make(seed, speculation=True)
    report = platform.run_job(cluster, _job())
    assert dict(report.counters.as_dict()["job"]) == expected
