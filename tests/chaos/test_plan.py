"""Unit tests for Fault / FaultPlan: validation, ordering, digests."""

import pytest

from repro.chaos import FAULT_KINDS, Fault, FaultPlan
from repro.errors import ConfigError


def test_fault_kinds_are_a_closed_set():
    assert set(FAULT_KINDS) == {"vm.crash", "host.crash", "net.degrade",
                                "net.partition", "disk.slow", "rejoin"}


def test_fault_rejects_unknown_kind():
    with pytest.raises(ConfigError):
        Fault(at=1.0, kind="cpu.melt", target="vm0").validate()


def test_fault_rejects_negative_times():
    with pytest.raises(ConfigError):
        Fault(at=-1.0, kind="vm.crash", target="vm0").validate()
    with pytest.raises(ConfigError):
        Fault(at=1.0, kind="vm.crash", target="vm0",
              duration=-2.0).validate()


def test_fault_requires_target():
    with pytest.raises(ConfigError):
        Fault(at=0.0, kind="vm.crash", target="").validate()


def test_factor_kinds_require_factor_above_one():
    with pytest.raises(ConfigError):
        Fault(at=0.0, kind="disk.slow", target="vm0",
              factor=1.0).validate()
    with pytest.raises(ConfigError):
        Fault(at=0.0, kind="net.degrade", target="pm0",
              factor=0.5).validate()
    # The factor is meaningless (hence unchecked) for crash kinds.
    Fault(at=0.0, kind="vm.crash", target="vm0", factor=0.5).validate()


def test_plan_add_validates_and_chains():
    plan = (FaultPlan(name="p")
            .add(Fault(at=2.0, kind="vm.crash", target="a"))
            .add(Fault(at=1.0, kind="disk.slow", target="b", factor=2.0)))
    assert len(plan) == 2
    with pytest.raises(ConfigError):
        plan.add(Fault(at=0.0, kind="nope", target="x"))
    assert len(plan) == 2  # the invalid fault was not appended


def test_plan_ordered_sorts_by_time_then_declaration():
    early_a = Fault(at=1.0, kind="vm.crash", target="a")
    early_b = Fault(at=1.0, kind="vm.crash", target="b")
    late = Fault(at=5.0, kind="vm.crash", target="c")
    plan = FaultPlan().add(late).add(early_a).add(early_b)
    assert plan.ordered() == [early_a, early_b, late]


def test_plan_horizon_includes_heal_times():
    plan = (FaultPlan()
            .add(Fault(at=3.0, kind="vm.crash", target="a", duration=10.0))
            .add(Fault(at=8.0, kind="vm.crash", target="b")))
    assert plan.horizon == 13.0
    assert FaultPlan().horizon == 0.0


def _reference_plan() -> FaultPlan:
    return (FaultPlan(name="d")
            .add(Fault(at=1.0, kind="vm.crash", target="a"))
            .add(Fault(at=2.0, kind="host.crash", target="pm1")))


def test_plan_digest_is_content_addressed():
    assert _reference_plan().digest() == _reference_plan().digest()
    grown = _reference_plan().add(Fault(at=3.0, kind="rejoin", target="a"))
    assert grown.digest() != _reference_plan().digest()
    renamed = FaultPlan(name="e", faults=list(_reference_plan().faults))
    assert renamed.digest() != _reference_plan().digest()


def test_fault_rejects_non_finite_values():
    """NaN passes every ``< 0`` bound check, then poisons ordered()'s
    sort and key()'s digest formatting — all non-finite numerics must be
    rejected up front (regression: satellite fix, PR 8)."""
    nan, inf = float("nan"), float("inf")
    for bad in (nan, inf, -inf):
        with pytest.raises(ConfigError):
            Fault(at=bad, kind="vm.crash", target="a").validate()
        with pytest.raises(ConfigError):
            Fault(at=0.0, kind="vm.crash", target="a",
                  duration=bad).validate()
        with pytest.raises(ConfigError):
            Fault(at=0.0, kind="disk.slow", target="a",
                  factor=bad).validate()
    with pytest.raises(ConfigError):
        Fault(at="soon", kind="vm.crash", target="a").validate()
    with pytest.raises(ConfigError):
        Fault(at=True, kind="vm.crash", target="a").validate()


def test_rejoin_rejects_positive_duration():
    """A rejoin is instantaneous; delayed rejoins belong to the crash
    fault's ``duration``."""
    Fault(at=1.0, kind="rejoin", target="a").validate()
    with pytest.raises(ConfigError):
        Fault(at=1.0, kind="rejoin", target="a", duration=5.0).validate()


def test_digest_name_cannot_forge_fault_separators():
    """The plan name is length-prefixed in the digest, so a crafted name
    containing the ``\\n``/``|`` separators cannot collide with a plan
    whose first fault spells the same bytes."""
    fault = Fault(at=0.0, kind="vm.crash", target="x")
    crafted = FaultPlan(name="p\n" + fault.key())
    honest = FaultPlan(name="p", faults=[fault])
    assert crafted.digest() != honest.digest()


def test_plan_validate_catches_directly_built_faults():
    plan = FaultPlan(name="direct")
    plan.faults.append(Fault(at=float("nan"), kind="vm.crash", target="a"))
    with pytest.raises(ConfigError):
        plan.validate()
