"""End-to-end automatic recovery: jobs survive injected failures.

These are the acceptance tests for the chaos harness: a worker (or a
whole host) dies *while a Wordcount runs* and the job must still finish
with byte-identical output — recovery is heartbeat reaping + task retry +
background re-replication, with no manual ``repair_cluster`` anywhere.
"""

import collections

import pytest

from repro.chaos import ChaosInjector, Fault, FaultPlan
from repro.config import HadoopConfig, PlatformConfig
from repro.errors import VMStateError
from repro.hdfs.replication import under_replicated
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.platform.faults import crash_worker, rejoin_worker
from repro.virt import VMState
from repro.workloads.wordcount import (line_record_sizeof, lines_as_records,
                                       wordcount_job)

LINES = ["kappa lambda mu nu xi omicron pi rho",
         "lambda mu nu xi", "kappa kappa rho sigma tau"] * 60
RECORDS = lines_as_records(LINES)
EXPECTED = dict(collections.Counter(" ".join(LINES).split()))


def make(n=8, seed=11, replication=2):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed,
                                              trace=True))
    cluster = platform.provision_cluster(
        "rec", ClusterSpec.packed(n, hosts=2),
        hadoop_config=HadoopConfig(dfs_replication=replication))
    platform.upload(cluster, "/in", RECORDS, sizeof=line_record_sizeof,
                    timed=False)
    return platform, cluster


def run_clean(seed=11):
    platform, cluster = make(seed=seed)
    report = platform.run_job(cluster,
                              wordcount_job("/in", "/out", n_reduces=2))
    runner = platform.runners[cluster.name]
    return report.elapsed, sorted(runner.read_output(report))


def run_with_plan(plan_builder, seed=11):
    platform, cluster = make(seed=seed)
    runner = platform.runner(cluster)
    injector = ChaosInjector(cluster, plan_builder(cluster))
    done = runner.submit(wordcount_job("/in", "/out", n_reduces=2))
    injector.start()
    platform.sim.run_until(done)
    return platform, cluster, sorted(runner.read_output(done.value))


# --- satellite: kill a worker at several points of the job ----------------

@pytest.mark.parametrize("fraction", [0.15, 0.45, 0.75])
def test_worker_crash_mid_job_output_identical(fraction):
    elapsed, clean = run_clean()

    def plan(cluster):
        victim = cluster.workers[1]
        return FaultPlan(name=f"kill-{fraction}").add(
            Fault(at=fraction * elapsed, kind="vm.crash",
                  target=victim.name))

    platform, _cluster, chaos = run_with_plan(plan)
    assert chaos == clean
    assert dict(chaos) == EXPECTED


def test_whole_host_crash_mid_job_output_identical():
    elapsed, clean = run_clean()

    def plan(cluster):
        doomed = cluster.datacenter.machines[-1].name
        return FaultPlan(name="host-loss").add(
            Fault(at=0.4 * elapsed, kind="host.crash", target=doomed))

    platform, cluster, chaos = run_with_plan(plan)
    assert chaos == clean
    # Correlated failure across a whole host: the reaper and the
    # replication monitor both fire (possibly only after the job already
    # finished — detection has a grace period), and no manual repair ran.
    platform.sim.run(until=platform.sim.now + 120.0)
    assert platform.tracer.count("recovery.tracker.dead") >= 1
    assert platform.tracer.count("recovery.replication.start") >= 1


def test_crash_with_rejoin_mid_job_output_identical():
    elapsed, clean = run_clean()

    def plan(cluster):
        victim = cluster.workers[2]
        return FaultPlan(name="bounce").add(
            Fault(at=0.3 * elapsed, kind="vm.crash", target=victim.name,
                  duration=0.3 * elapsed))

    _platform, _cluster, chaos = run_with_plan(plan)
    assert chaos == clean


# --- satellite regression: double failure during shuffle recovery --------

def test_shuffle_recovery_survives_second_failure():
    """A mapper VM dies after the map phase (its intermediate output is
    lost) and another worker dies during the reduce phase.  The shuffle
    re-runs the lost map; if the re-run lands on the second victim the
    attempt fails cleanly and is retried elsewhere — the job must still
    produce correct output either way."""
    platform, cluster = make()
    cluster.arm_recovery()
    runner = platform.runner(cluster)
    done = runner.submit(wordcount_job("/in", "/out", n_reduces=2))

    sim = platform.sim
    while not platform.tracer.count("job.maps.done"):
        sim.step()
    mapper_name = next(platform.tracer.select("task.map.done"))["tracker"]
    first = next(tr.vm for tr in cluster.trackers
                 if tr.name == mapper_name)
    crash_worker(cluster, first)
    second = next(vm for vm in cluster.workers
                  if vm is not first and vm.state is VMState.RUNNING)
    crash_worker(cluster, second)

    platform.sim.run_until(done)
    assert dict(runner.read_output(done.value)) == EXPECTED
    assert platform.tracer.count("task.map.recover") >= 1


# --- crash/rejoin primitives ----------------------------------------------

def test_crash_worker_rejects_non_worker():
    platform, cluster = make()
    outsider = platform.datacenter.create_vm(
        "outsider", platform.datacenter.machine(0))
    with pytest.raises(VMStateError):
        crash_worker(cluster, outsider)


def test_crash_worker_defers_detection_to_monitors():
    platform, cluster = make()
    cluster.arm_recovery()
    victim = cluster.workers[0]
    n_trackers = len(cluster.trackers)
    crash_worker(cluster, victim)
    # Unlike fail_worker, services are not detached synchronously …
    assert victim.state is VMState.FAILED
    assert len(cluster.trackers) == n_trackers
    # … the heartbeat reaper removes the tracker after the grace period.
    grace = (cluster.config.missed_heartbeats_dead
             * cluster.config.heartbeat_s)
    platform.sim.run(until=platform.sim.now + grace + 1.0)
    assert len(cluster.trackers) == n_trackers - 1
    assert platform.tracer.count("recovery.tracker.dead") == 1


def test_replication_monitor_repairs_without_manual_call():
    platform, cluster = make()
    cluster.arm_recovery()
    victim_dn = next(dn for dn in cluster.datanodes if dn.blocks)
    crash_worker(cluster, victim_dn.vm)
    assert under_replicated(cluster.namenode,
                            cluster.config.dfs_replication) == []
    platform.sim.run(until=platform.sim.now + 120.0)
    assert platform.tracer.count("recovery.datanode.dead") == 1
    assert platform.tracer.count("recovery.replication.done") >= 1
    assert victim_dn not in cluster.namenode.datanodes
    assert not under_replicated(cluster.namenode,
                                cluster.config.dfs_replication)


def test_rejoin_worker_restores_services_and_rearms_watchers():
    platform, cluster = make()
    cluster.arm_recovery()
    victim = cluster.workers[3]
    crash_worker(cluster, victim)
    platform.sim.run(until=platform.sim.now + 120.0)  # reap + re-replicate
    rejoin_worker(cluster, victim)
    assert victim.state is VMState.RUNNING
    assert any(t.vm is victim for t in cluster.trackers)
    fresh = [dn for dn in cluster.datanodes if dn.vm is victim]
    assert len(fresh) == 1 and not fresh[0].blocks  # cold disk
    assert fresh[0] in cluster.namenode.datanodes
    assert platform.tracer.count("recovery.worker.rejoined") == 1
    # The rejoined node is watched again: crash it a second time.
    platform.sim.run(until=platform.sim.now + 1.0)
    crash_worker(cluster, victim)
    platform.sim.run(until=platform.sim.now + 120.0)
    assert platform.tracer.count("recovery.tracker.dead") == 2

    report = platform.run_job(cluster,
                              wordcount_job("/in", "/out2", n_reduces=2))
    assert dict(platform.collect(cluster, report)) == EXPECTED
