"""Fault-injection tests: datanode loss, re-replication, task re-execution.

These exercise the machinery behind the paper's observation that Hadoop's
fault tolerance "will re-run the job or restore from other available
backup data" during migration downtime.
"""

import collections

import pytest

from repro.config import HadoopConfig, PlatformConfig
from repro.errors import VMStateError
from repro.hdfs.replication import under_replicated
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.platform.faults import (alive_workers, fail_worker,
                                   repair_cluster)
from repro.virt import VMState
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

LINES = ["epsilon zeta eta theta", "zeta eta", "theta theta epsilon"] * 10
RECORDS = lines_as_records(LINES)
EXPECTED = dict(collections.Counter(" ".join(LINES).split()))


def make(n=8, seed=13, replication=2):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster(
        "f", ClusterSpec.single_host(n),
        hadoop_config=HadoopConfig(dfs_replication=replication))
    platform.upload(cluster, "/in", RECORDS, sizeof=line_record_sizeof,
                    timed=False)
    return platform, cluster


def test_fail_worker_detaches_services():
    platform, cluster = make()
    victim = cluster.workers[0]
    n_trackers = len(cluster.trackers)
    n_datanodes = len(cluster.namenode.datanodes)
    fail_worker(cluster, victim)
    assert victim.state is VMState.FAILED
    assert len(cluster.trackers) == n_trackers - 1
    assert len(cluster.namenode.datanodes) == n_datanodes - 1
    assert victim.name not in [t.name for t in cluster.trackers]
    assert len(alive_workers(cluster)) == len(cluster.workers) - 1


def test_fail_worker_requires_membership():
    platform, cluster = make()
    outsider = platform.datacenter.create_vm("out",
                                             platform.datacenter.machine(0))
    with pytest.raises(VMStateError):
        fail_worker(cluster, outsider)


def test_failed_vm_rejects_work():
    platform, cluster = make()
    victim = cluster.workers[0]
    fail_worker(cluster, victim)
    with pytest.raises(VMStateError):
        victim.compute(1.0)
    with pytest.raises(VMStateError):
        victim.fail()  # double-fail rejected


def test_replication_repair_restores_replica_count():
    platform, cluster = make()
    # Find a datanode holding at least one replica.
    victim_dn = next(dn for dn in cluster.datanodes if dn.blocks)
    fail_worker(cluster, victim_dn.vm)
    missing = under_replicated(cluster.namenode,
                               cluster.config.dfs_replication)
    assert missing  # the dead node really held replicas
    report = repair_cluster(cluster)
    assert report.repaired
    assert not report.unrecoverable
    assert report.bytes_copied > 0
    assert not under_replicated(cluster.namenode,
                                cluster.config.dfs_replication)


def test_reads_survive_datanode_loss():
    platform, cluster = make()
    victim_dn = next(dn for dn in cluster.datanodes if dn.blocks)
    fail_worker(cluster, victim_dn.vm)
    reader = alive_workers(cluster)[0]
    read = cluster.dfs.read_file(reader, "/in")
    platform.sim.run_until(read)
    assert list(read.value) == RECORDS


def test_job_completes_after_pre_job_failure():
    platform, cluster = make()
    fail_worker(cluster, cluster.workers[2])
    report = platform.run_job(cluster,
                              wordcount_job("/in", "/out", n_reduces=2))
    assert dict(platform.collect(cluster, report)) == EXPECTED
    # No task ran on the dead tracker.
    assert all(t.tracker != cluster.workers[2].name for t in report.tasks)


def test_shuffle_recovers_lost_map_output():
    """A map's VM dies after the map phase; the shuffle re-runs the map."""
    platform, cluster = make(n=6)
    runner = platform.runners[cluster.name]
    job = wordcount_job("/in", "/out", n_reduces=2)
    event = runner.submit(job)

    # Let the map phase finish, then kill the VM that ran the first map —
    # its intermediate output dies with it.
    sim = platform.sim
    while not platform.tracer.count("job.maps.done"):
        sim.step()
    mapper_name = next(platform.tracer.select("task.map.done"))["tracker"]
    victim = next(tr.vm for tr in cluster.trackers
                  if tr.name == mapper_name)
    fail_worker(cluster, victim)

    sim.run_until(event)
    report = event.value
    assert dict(runner.read_output(report)) == EXPECTED
    # The engine recovered the dead VM's map output during the shuffle.
    assert platform.tracer.count("task.map.recover") >= 1


def test_under_replicated_detects_small_cluster_limits():
    platform, cluster = make(n=3, replication=2)
    # Kill one of the two datanodes: replication clamps to the single
    # survivor, so nothing is under-replicated *after* repair.
    victim_dn = next(dn for dn in cluster.datanodes if dn.blocks)
    fail_worker(cluster, victim_dn.vm)
    repair_cluster(cluster)
    assert not under_replicated(cluster.namenode, 2)
