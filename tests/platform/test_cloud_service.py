"""Tests for the on-demand elastic vHadoop service (paper future work)."""

import collections

import pytest

from repro import constants as C
from repro.cloud import OnDemandVHadoopService, ServiceRequest
from repro.config import PlatformConfig, VMConfig
from repro.errors import ConfigError
from repro.platform import VHadoopPlatform
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

LINES = ["iota kappa lambda", "kappa lambda", "lambda"] * 6
EXPECTED = dict(collections.Counter(" ".join(LINES).split()))


def wc_request(name, n_nodes=4, memory=None):
    return ServiceRequest(
        name=name,
        n_nodes=n_nodes,
        records=lines_as_records(LINES),
        make_job=lambda inp, out: wordcount_job(inp, out, n_reduces=2),
        sizeof=line_record_sizeof,
        vm_config=VMConfig(memory=memory) if memory else None,
    )


def make_service(seed=23, n_hosts=2):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=n_hosts, seed=seed))
    return platform, OnDemandVHadoopService(platform)


def test_single_request_end_to_end():
    platform, service = make_service()
    event = service.submit(wc_request("one"))
    (outcome,) = service.run_all([event])
    assert dict(outcome.output) == EXPECTED
    assert outcome.report is not None
    assert outcome.total_s > 18.0  # boot time is part of the service time
    assert outcome.queue_wait_s == 0.0


def test_teardown_returns_capacity():
    platform, service = make_service()
    free_before = sum(m.dram_free for m in platform.datacenter.machines)
    event = service.submit(wc_request("cycle"))
    service.run_all([event])
    free_after = sum(m.dram_free for m in platform.datacenter.machines)
    assert free_after == free_before


def test_concurrent_requests_share_the_datacenter():
    platform, service = make_service()
    events = [service.submit(wc_request(f"r{i}")) for i in range(3)]
    outcomes = service.run_all(events)
    assert all(dict(o.output) == EXPECTED for o in outcomes)
    # All three fit at once: nobody waited.
    assert all(o.queue_wait_s == 0.0 for o in outcomes)
    # They really overlapped.
    starts = [o.started_at for o in outcomes]
    ends = [o.finished_at for o in outcomes]
    assert min(ends) > max(starts)


def test_oversized_demand_queues_then_runs():
    # Each host has 30 GiB for guests; 2 GiB VMs x 16 nodes = 32 GiB per
    # request, so two requests (64 GiB) exceed the 60 GiB datacenter: the
    # second must wait for the first to tear down.
    platform, service = make_service()
    big = lambda name: wc_request(name, n_nodes=16, memory=2 * C.GiB)
    first = service.submit(big("first"))
    second = service.submit(big("second"))
    assert service.queued >= 1  # second did not fit immediately
    outcomes = service.run_all([first, second])
    by_name = {o.request.name: o for o in outcomes}
    assert by_name["second"].queue_wait_s > 0.0
    assert by_name["second"].started_at >= by_name["first"].finished_at
    assert dict(by_name["second"].output) == EXPECTED


def test_small_request_skips_ahead_of_oversized_one():
    platform, service = make_service()
    blocker = service.submit(wc_request("blocker", n_nodes=16,
                                        memory=2 * C.GiB))
    too_big = service.submit(wc_request("too-big", n_nodes=16,
                                        memory=2 * C.GiB))
    small = service.submit(wc_request("small", n_nodes=3))
    outcomes = service.run_all([blocker, too_big, small])
    by_name = {o.request.name: o for o in outcomes}
    # The small request fit beside the blocker and never queued.
    assert by_name["small"].queue_wait_s == 0.0
    assert by_name["too-big"].queue_wait_s > 0.0


def test_zero_skip_budget_means_strict_fifo():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=23))
    service = OnDemandVHadoopService(platform, max_head_skips=0)
    blocker = service.submit(wc_request("blocker", n_nodes=16,
                                        memory=2 * C.GiB))
    too_big = service.submit(wc_request("too-big", n_nodes=16,
                                        memory=2 * C.GiB))
    small = service.submit(wc_request("small", n_nodes=3))
    outcomes = service.run_all([blocker, too_big, small])
    by_name = {o.request.name: o for o in outcomes}
    # Nothing may pass the queue head: the small request waits it out.
    assert by_name["small"].queue_wait_s > 0.0
    assert by_name["small"].started_at >= by_name["too-big"].started_at
    assert dict(by_name["small"].output) == EXPECTED


def test_aging_guard_stops_small_requests_starving_a_big_one():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=23))
    service = OnDemandVHadoopService(platform, max_head_skips=2)
    blocker = service.submit(wc_request("blocker", n_nodes=16,
                                        memory=2 * C.GiB))
    big = service.submit(wc_request("big", n_nodes=16, memory=2 * C.GiB))
    smalls = [service.submit(wc_request(f"s{i}", n_nodes=3))
              for i in range(5)]
    # Only two smalls may jump the starving head; the rest wait behind it
    # even though capacity for them is free.
    assert service.queued == 4  # big + three blocked smalls
    outcomes = service.run_all([blocker, big] + smalls)
    by_name = {o.request.name: o for o in outcomes}
    assert by_name["s0"].queue_wait_s == 0.0
    assert by_name["s1"].queue_wait_s == 0.0
    for name in ("s2", "s3", "s4"):
        assert by_name[name].started_at >= by_name["big"].started_at
        assert dict(by_name[name].output) == EXPECTED


def test_head_skip_validation():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=23))
    with pytest.raises(ConfigError):
        OnDemandVHadoopService(platform, max_head_skips=-1)
    # None restores the unbounded legacy scan.
    service = OnDemandVHadoopService(platform, max_head_skips=None)
    assert service.max_head_skips is None


def test_request_validation():
    with pytest.raises(ConfigError):
        wc_request("tiny", n_nodes=1)
    with pytest.raises(ConfigError):
        ServiceRequest(name="empty", n_nodes=3, records=[],
                       make_job=lambda i, o: None)


def test_shared_service_runs_tenants_on_one_warm_cluster():
    from repro.cloud import SharedVHadoopService
    from repro.platform import ClusterSpec

    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=23))
    cluster = platform.provision_cluster("warm", ClusterSpec.single_host(6))
    service = SharedVHadoopService(platform, cluster)
    events = [service.submit(wc_request("a"), pool="tenant-a"),
              service.submit(wc_request("b"), pool="tenant-b")]
    outcomes = service.run_all(events)
    assert all(dict(o.output) == EXPECTED for o in outcomes)
    # No per-job boot: far quicker than the ~18 s cluster-per-job path.
    assert all(o.total_s < 18.0 for o in outcomes)
    report = service.scheduler_report()
    assert report.n_jobs == 2
    assert {j.pool for j in report.jobs} == {"tenant-a", "tenant-b"}
    done = platform.tracer.last("cloud.request.done")
    assert done is not None and done["shared"] is True


def test_service_emits_trace():
    platform, service = make_service()
    service.run_all([service.submit(wc_request("traced"))])
    done = platform.tracer.last("cloud.request.done")
    assert done is not None
    assert done["total"] > 0


def admission_events(platform):
    return [e for e in platform.tracer.events
            if e.kind == "cloud.admission.decision"]


def test_every_admission_verdict_is_announced():
    platform, service = make_service()
    # Admit: fits immediately.
    fast = service.submit(wc_request("fast"))
    # Defer: a second 16-node 2 GiB request cannot fit beside the first.
    big = lambda name: wc_request(name, n_nodes=16, memory=2 * C.GiB)
    blocker = service.submit(big("blocker"))
    waiter = service.submit(big("waiter"))
    events = admission_events(platform)
    by_source = {e.source: e for e in events}
    assert by_source["fast"]["decision"] == "admit"
    assert by_source["fast"]["tenant"] == "default"
    assert by_source["waiter"]["decision"] == "defer"
    assert "n_nodes=16" in by_source["waiter"]["reason"]
    # One defer per stay in the queue, not one per admission scan.
    assert sum(e.source == "waiter" for e in events) == 1
    service.run_all([fast, blocker, waiter])
    events = admission_events(platform)
    # The waiter was eventually admitted too: defer then admit.
    waiter_decisions = [e["decision"] for e in events
                        if e.source == "waiter"]
    assert waiter_decisions == ["defer", "admit"]


def test_impossible_request_announces_rejection_and_raises():
    from repro.errors import PlacementError

    platform, service = make_service()
    # 64 nodes x 2 GiB = 128 GiB can never fit the 60 GiB datacenter.
    with pytest.raises(PlacementError):
        service.submit(wc_request("hopeless", n_nodes=64, memory=2 * C.GiB))
    event = platform.tracer.last("cloud.admission.decision")
    assert event is not None and event.source == "hopeless"
    assert event["decision"] == "reject-impossible"
    assert event["tenant"] == "default"
    assert "n_nodes=64" in event["reason"]
    assert service.queued == 0  # never entered the queue
