"""Tests for cluster specs, provisioning and the VHadoopPlatform facade."""

import pytest

from repro.config import HadoopConfig, PlatformConfig, TopologySpec, VMConfig
from repro.errors import ConfigError, PlacementError
from repro.platform import (ClusterSpec, VHadoopPlatform, balanced_placement,
                            cross_domain_placement, normal_placement)
from repro.platform.provisioning import validate_placement
from repro.virt import VMState
from repro.workloads.wordcount import lines_as_records, wordcount_job


# --- ClusterSpec resolution -------------------------------------------------

def test_single_host_spec():
    p = ClusterSpec.single_host(16).placement(2)
    assert p.n_vms == 16
    assert p.hosts_used() == {0}
    assert p.label == "normal"


def test_packed_spec_splits_equally():
    p = ClusterSpec.packed(16, hosts=2).placement(2)
    assert p.assignment.count(0) == 8
    assert p.assignment.count(1) == 8
    # Contiguous split: first half on host 0.
    assert p.assignment[:8] == (0,) * 8
    assert p.label == "cross-domain"


def test_packed_odd_counts():
    p = ClusterSpec.packed(5, hosts=2).placement(2)
    assert p.hosts_used() == {0, 1}
    assert p.n_vms == 5


def test_packed_defaults_to_all_hosts():
    p = ClusterSpec.packed(8).placement(4)
    assert p.hosts_used() == {0, 1, 2, 3}


def test_spread_spec_round_robin():
    p = ClusterSpec.spread(6, hosts=2).placement(2)
    assert p.assignment == (0, 1, 0, 1, 0, 1)
    assert p.label == "balanced"


def test_racked_spec_fills_topology():
    spec = ClusterSpec.racked("2x2x4")
    assert spec.n_vms == 16
    assert spec.topology == TopologySpec(racks=2, hosts_per_rack=2,
                                         vms_per_host=4)
    p = spec.placement(4)
    assert p.assignment == tuple(i // 4 for i in range(16))
    assert p.label == "2x2x4-packed"


def test_spec_pins_override_layout():
    p = ClusterSpec.packed(4, hosts=2, pin={0: 1}).placement(2)
    assert p.assignment == (1, 0, 1, 1)


def test_spec_validation():
    with pytest.raises(ConfigError):
        ClusterSpec.single_host(0)
    with pytest.raises(ConfigError):
        ClusterSpec(4, layout="bogus")
    with pytest.raises(ConfigError):
        ClusterSpec.packed(4, hosts=0)
    with pytest.raises(ConfigError):
        ClusterSpec.packed(4, pin={9: 0})
    with pytest.raises(ConfigError):
        # Spec wants more hosts than the datacenter has.
        ClusterSpec.packed(8, hosts=4).placement(2)


def test_validate_placement_against_machines():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2))
    bad = ClusterSpec.single_host(4, host=7).placement(8)
    with pytest.raises(PlacementError):
        validate_placement(bad, platform.datacenter.machines)


# --- deprecated placement-helper shims --------------------------------------
# The only sanctioned callers of the legacy helpers; everything else in the
# repo builds clusters from ClusterSpec.

def test_deprecated_helpers_match_specs():
    with pytest.warns(DeprecationWarning):
        old = normal_placement(16)
    assert old == ClusterSpec.single_host(16).placement(1)
    with pytest.warns(DeprecationWarning):
        old = cross_domain_placement(16, n_hosts=2)
    assert old == ClusterSpec.packed(16, hosts=2).placement(2)
    with pytest.warns(DeprecationWarning):
        old = balanced_placement(6, 2)
    assert old == ClusterSpec.spread(6, hosts=2).placement(2)


def test_deprecated_helpers_keep_validation():
    with pytest.raises(PlacementError):
        normal_placement(0)
    with pytest.raises(PlacementError):
        cross_domain_placement(4, n_hosts=1)
    with pytest.raises(PlacementError):
        balanced_placement(3, 0)


def test_deprecated_helper_accepts_host_index():
    with pytest.warns(DeprecationWarning):
        p = normal_placement(4, host_index=1)
    assert p.hosts_used() == {1}


# --- provisioning -----------------------------------------------------------

def test_provision_places_and_runs_vms():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=1))
    cluster = platform.provision_cluster("c", ClusterSpec.packed(6, hosts=2))
    assert cluster.n_nodes == 6
    assert len(cluster.workers) == 5
    assert all(vm.state is VMState.RUNNING for vm in cluster.vms)
    assert cluster.cross_domain
    assert cluster.hosts_used() == {"pm0", "pm1"}


def test_provision_with_boot_charges_time():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=1))
    platform.provision_cluster("c", ClusterSpec.single_host(4), boot=True)
    assert platform.sim.now > 18.0  # guest boot floor


def test_provision_rejects_duplicates_and_tiny_clusters():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=1))
    platform.provision_cluster("c", ClusterSpec.single_host(2))
    with pytest.raises(ConfigError):
        platform.provision_cluster("c", ClusterSpec.single_host(2))
    with pytest.raises(ConfigError):
        platform.provision_cluster("tiny", ClusterSpec.single_host(1))


def test_custom_vm_and_hadoop_config():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=1))
    cluster = platform.provision_cluster(
        "c", ClusterSpec.single_host(3),
        vm_config=VMConfig(memory=512 * 1024 * 1024),
        hadoop_config=HadoopConfig(map_tasks_maximum=3))
    assert cluster.master.config.memory == 512 * 1024 * 1024
    assert cluster.trackers[0].map_slots.capacity == 3


def test_spec_embedded_vm_and_hadoop_config():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=1))
    spec = ClusterSpec.single_host(
        3, vm=VMConfig(memory=512 * 1024 * 1024),
        hadoop=HadoopConfig(map_tasks_maximum=3))
    cluster = platform.provision_cluster("c", spec)
    assert cluster.master.config.memory == 512 * 1024 * 1024
    assert cluster.trackers[0].map_slots.capacity == 3


def test_upload_timed_vs_untimed():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=1))
    cluster = platform.provision_cluster("c", ClusterSpec.single_host(4))
    records = lines_as_records(["hello world"] * 100)
    platform.upload(cluster, "/untimed", records, timed=False)
    t0 = platform.sim.now
    assert t0 == 0.0
    platform.upload(cluster, "/timed", records,
                    sizeof=lambda _r: 1_000_000)
    assert platform.sim.now > t0
    assert cluster.dfs.peek_records("/untimed") == tuple(records)
    assert cluster.dfs.peek_records("/timed") == tuple(records)


def test_full_flow_provision_upload_run_collect():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=1))
    cluster = platform.provision_cluster("c", ClusterSpec.single_host(4))
    platform.upload(cluster, "/in", lines_as_records(["x y x"]), timed=False)
    report = platform.run_job(cluster, wordcount_job("/in", "/out"))
    assert dict(platform.collect(cluster, report)) == {"x": 2, "y": 1}
    assert platform.tracer.count("job.done") == 1


def test_reconfigure_rebuilds_slots():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=1))
    cluster = platform.provision_cluster("c", ClusterSpec.single_host(4))
    cluster.reconfigure(cluster.config.replace(map_tasks_maximum=4))
    assert all(t.map_slots.capacity == 4 for t in cluster.trackers)
    assert platform.tracer.count("cluster.reconfigure") == 1


def test_cluster_requires_worker():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=1))
    from repro.platform.cluster import HadoopVirtualCluster
    vm = platform.datacenter.create_vm("solo", platform.datacenter.machine(0))
    with pytest.raises(ConfigError):
        HadoopVirtualCluster("bad", platform.datacenter, vm, [])
