"""ElasticWorkerPool: grow (boot, join, attach), graceful shrink, bounds."""

import pytest

from repro.cloud import SharedVHadoopService
from repro.config import PlatformConfig
from repro.errors import ConfigError
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.platform.provisioning import ElasticWorkerPool
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

LINES = ["rho sigma tau", "sigma tau", "tau"] * 6


def make_pool(seed=29, max_size=4, **kw):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster("ep", ClusterSpec.spread(4, hosts=2))
    service = SharedVHadoopService(platform, cluster)
    pool = ElasticWorkerPool(cluster, service.scheduler,
                             max_size=max_size, **kw)
    return platform, cluster, service, pool


def test_grow_boots_joins_and_attaches():
    platform, cluster, service, pool = make_pool()
    base_slots = service.scheduler.total_slots("map")
    base_vms = len(cluster.vms)
    base_datanodes = len(cluster.datanodes)
    started = pool.grow(2)
    assert started == 2
    assert pool.booting == 2 and pool.size == 2  # boots count as committed
    platform.sim.run_until(platform.sim.timeout(120.0))
    assert pool.booting == 0 and len(pool.workers) == 2
    assert len(cluster.vms) == base_vms + 2
    assert service.scheduler.total_slots("map") > base_slots
    # Compute-only workers: no DataNode joined HDFS.
    assert len(cluster.datanodes) == base_datanodes


def test_grow_respects_max_size_and_avoid_hosts():
    platform, cluster, service, pool = make_pool(max_size=3)
    assert pool.grow(10) == 3          # capped
    assert pool.grow(1) == 0           # already at the cap
    platform.sim.run_until(platform.sim.timeout(120.0))
    hosts = {t.vm.host.name for t in pool.workers}
    assert hosts  # placed somewhere real
    # A fresh pool told to avoid one host places everything on the other.
    platform2, cluster2, service2, pool2 = make_pool(seed=30)
    machines = platform2.datacenter.machines
    pool2.grow(2, avoid_hosts={machines[0].name})
    platform2.sim.run_until(platform2.sim.timeout(120.0))
    assert {t.vm.host.name for t in pool2.workers} == {machines[1].name}


def test_shrink_drains_then_retires_and_returns_dram():
    platform, cluster, service, pool = make_pool()
    pool.grow(2)
    platform.sim.run_until(platform.sim.timeout(120.0))
    free_before = sum(m.dram_free for m in platform.datacenter.machines)
    base_vms = len(cluster.vms)
    assert pool.shrink(1) == 1
    assert pool.size == 1              # draining drops out immediately
    platform.sim.run_until(platform.sim.timeout(60.0))
    assert pool.retired == 1 and len(pool.workers) == 1
    assert len(cluster.vms) == base_vms - 1
    free_after = sum(m.dram_free for m in platform.datacenter.machines)
    assert free_after > free_before    # the VM's DRAM came back


def test_shrink_waits_for_running_work():
    from repro.cloud import ServiceRequest

    platform, cluster, service, pool = make_pool()
    pool.grow(1)
    platform.sim.run_until(platform.sim.timeout(120.0))
    request = ServiceRequest(
        name="inflight", n_nodes=2, records=lines_as_records(LINES),
        make_job=lambda i, o: wordcount_job(i, o, n_reduces=1),
        sizeof=line_record_sizeof)
    event = service.submit(request)
    # Retire while the job is in flight: the drain must outwait it.
    pool.shrink(1)
    platform.sim.run_until(event)
    platform.sim.run_until(platform.sim.timeout(60.0))
    assert pool.retired == 1
    outcome = event.value
    assert outcome.output  # the job still completed normally


def test_min_size_floor_and_validation():
    platform, cluster, service, pool = make_pool(min_size=1, max_size=3)
    pool.grow(2)
    platform.sim.run_until(platform.sim.timeout(120.0))
    assert pool.shrink(5) == 1          # floor holds at min_size
    with pytest.raises(ConfigError):
        ElasticWorkerPool(cluster, service.scheduler, min_size=2, max_size=1)
