"""Correctness tests for the six clustering algorithms.

All algorithms run over well-separated synthetic blobs through the
LocalExecutor (pure math).  Cluster-executor equivalence is covered in
test_cluster_equivalence.py.
"""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.ml import (CanopyDriver, DirichletDriver, FuzzyKMeansDriver,
                      KMeansDriver, LocalExecutor, MeanShiftDriver,
                      MinHashDriver, points_as_records)
from repro.ml.canopy import canopy_pass
from repro.ml.fuzzykmeans import memberships
from repro.ml.vectors import EuclideanDistance

CENTERS = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 8.0]])


def make_blobs(n_per=40, sigma=0.6, seed=0):
    rng = np.random.default_rng(seed)
    pts = np.vstack([rng.normal(c, sigma, size=(n_per, 2)) for c in CENTERS])
    labels = np.repeat(np.arange(len(CENTERS)), n_per)
    return pts, labels


@pytest.fixture()
def blobs():
    return make_blobs()


def executor_for(points):
    return LocalExecutor({"/in": points_as_records(points)}, seed=1)


def match_centers(found: np.ndarray, truth: np.ndarray, tol: float) -> bool:
    """Every true center has a found center within tol."""
    for t in truth:
        if not any(np.linalg.norm(f - t) < tol for f in found):
            return False
    return True


# --- k-means -----------------------------------------------------------------

def test_kmeans_recovers_blob_centers(blobs):
    # Seeded near the truth (the paper's pipeline seeds k-means from
    # canopy centers); random seeding can hit bad local optima, which is
    # k-means behaving correctly, not a bug.
    points, labels = blobs
    init = [tuple(c) for c in CENTERS + 1.2]
    result = KMeansDriver(initial_centers=init, max_iterations=20).run(
        executor_for(points), "/in")
    assert result.converged
    assert match_centers(result.centers(), CENTERS, tol=1.0)
    # Assignments agree with ground truth up to relabeling.
    by_truth = {}
    for pid, cid in result.assignments.items():
        by_truth.setdefault(labels[pid], set()).add(cid)
    assert all(len(cids) == 1 for cids in by_truth.values())


def test_kmeans_explicit_centers_deterministic(blobs):
    points, _ = blobs
    init = [tuple(c) for c in CENTERS + 0.5]
    a = KMeansDriver(initial_centers=init).run(executor_for(points), "/in")
    b = KMeansDriver(initial_centers=init).run(executor_for(points), "/in")
    assert np.allclose(a.centers(), b.centers())


def test_kmeans_weights_sum_to_n(blobs):
    points, _ = blobs
    result = KMeansDriver(k=3, max_iterations=20).run(
        executor_for(points), "/in")
    assert sum(m.weight for m in result.models) == pytest.approx(len(points))


def test_kmeans_validation():
    with pytest.raises(ClusteringError):
        KMeansDriver()
    with pytest.raises(ClusteringError):
        KMeansDriver(k=0)
    points, _ = make_blobs(n_per=1)
    with pytest.raises(ClusteringError):
        KMeansDriver(k=50).run(executor_for(points), "/in")


def test_kmeans_random_seed_converges(blobs):
    points, _ = blobs
    result = KMeansDriver(k=3, max_iterations=30).run(
        executor_for(points), "/in")
    assert result.converged
    assert result.k == 3


def test_kmeans_history_tracks_iterations(blobs):
    points, _ = blobs
    result = KMeansDriver(k=3, max_iterations=20).run(
        executor_for(points), "/in")
    assert len(result.history) == result.iterations
    assert len(result.per_iteration_s) == result.iterations


# --- canopy -------------------------------------------------------------------

def test_canopy_pass_thresholds():
    measure = EuclideanDistance()
    points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
    canopies = canopy_pass(points, t1=1.0, t2=0.5, measure=measure)
    assert len(canopies) == 2  # the two nearby points share a canopy


def test_canopy_finds_three_blobs(blobs):
    points, _ = blobs
    result = CanopyDriver(t1=6.0, t2=3.0).run(executor_for(points), "/in")
    assert result.k == 3
    assert match_centers(result.centers(), CENTERS, tol=2.0)


def test_canopy_assignment_pass(blobs):
    points, _ = blobs
    result = CanopyDriver(t1=6.0, t2=3.0).run(executor_for(points), "/in",
                                              assign=True)
    assert len(result.assignments) == len(points)


def test_canopy_threshold_validation():
    with pytest.raises(ClusteringError):
        CanopyDriver(t1=1.0, t2=2.0)
    with pytest.raises(ClusteringError):
        CanopyDriver(t1=1.0, t2=0.0)


# --- fuzzy k-means --------------------------------------------------------------

def test_fuzzy_memberships_rows_sum_to_one():
    distances = np.array([[1.0, 2.0, 4.0], [3.0, 0.5, 1.0]])
    u = memberships(distances, m=2.0)
    assert np.allclose(u.sum(axis=1), 1.0)
    # Closer centers get higher membership.
    assert u[0, 0] > u[0, 1] > u[0, 2]


def test_fuzzy_exact_hit_handled():
    distances = np.array([[0.0, 5.0]])
    u = memberships(distances, m=2.0)
    assert u[0, 0] > 0.99


def test_fuzzy_recovers_blob_centers(blobs):
    points, _ = blobs
    result = FuzzyKMeansDriver(k=3, max_iterations=25).run(
        executor_for(points), "/in")
    assert match_centers(result.centers(), CENTERS, tol=1.5)


def test_fuzzy_soft_assignments(blobs):
    points, _ = blobs
    driver = FuzzyKMeansDriver(k=3, max_iterations=25)
    result = driver.run(executor_for(points), "/in")
    u = driver.soft_assignments(points, result)
    assert u.shape == (len(points), 3)
    assert np.allclose(u.sum(axis=1), 1.0)


def test_fuzzy_validation():
    with pytest.raises(ClusteringError):
        FuzzyKMeansDriver(k=3, m=1.0)
    with pytest.raises(ClusteringError):
        FuzzyKMeansDriver()


# --- mean shift -----------------------------------------------------------------

def test_meanshift_converges_to_blob_modes(blobs):
    points, _ = blobs
    result = MeanShiftDriver(t1=4.0, t2=2.0, max_iterations=15).run(
        executor_for(points), "/in")
    assert result.converged
    assert 3 <= result.k <= 5
    assert match_centers(result.centers(), CENTERS, tol=2.0)


def test_meanshift_weight_conserved(blobs):
    points, _ = blobs
    result = MeanShiftDriver(t1=4.0, t2=2.0, max_iterations=15).run(
        executor_for(points), "/in")
    assert sum(m.weight for m in result.models) == pytest.approx(len(points))


def test_meanshift_validation():
    with pytest.raises(ClusteringError):
        MeanShiftDriver(t1=1.0, t2=1.5)


# --- dirichlet -------------------------------------------------------------------

def test_dirichlet_finds_significant_models(blobs):
    points, _ = blobs
    result = DirichletDriver(n_models=8, max_iterations=8).run(
        executor_for(points), "/in")
    assert 1 <= result.k <= 8
    # The significant models' total support covers most points.
    assert sum(m.weight for m in result.models) > 0.7 * len(points)


def test_dirichlet_reproducible(blobs):
    points, _ = blobs
    a = DirichletDriver(n_models=6, max_iterations=5).run(
        executor_for(points), "/in")
    b = DirichletDriver(n_models=6, max_iterations=5).run(
        executor_for(points), "/in")
    assert np.allclose(a.centers(), b.centers())


def test_dirichlet_validation():
    with pytest.raises(ClusteringError):
        DirichletDriver(n_models=0)
    with pytest.raises(ClusteringError):
        DirichletDriver(alpha0=0.0)


# --- minhash -------------------------------------------------------------------

def test_minhash_clusters_similar_points(blobs):
    points, labels = blobs
    result = MinHashDriver(num_hashes=12, key_groups=2, bucket=4.0,
                           min_cluster_size=4).run(executor_for(points),
                                                   "/in")
    assert result.k >= 3
    # Most points within a minhash cluster share a ground-truth blob.
    agreements = total = 0
    for cid in set(result.assignments.values()):
        members = [pid for pid, c in result.assignments.items() if c == cid]
        truth = [labels[pid] for pid in members]
        agreements += max(truth.count(t) for t in set(truth))
        total += len(members)
    assert total > 0
    assert agreements / total > 0.9


def test_minhash_deterministic(blobs):
    points, _ = blobs
    a = MinHashDriver(seed=3).run(executor_for(points), "/in")
    b = MinHashDriver(seed=3).run(executor_for(points), "/in")
    assert a.assignments == b.assignments


def test_minhash_validation():
    with pytest.raises(ClusteringError):
        MinHashDriver(num_hashes=0)
    with pytest.raises(ClusteringError):
        MinHashDriver(min_cluster_size=0)
