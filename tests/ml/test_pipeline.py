"""Tests for the canopy-seeded k-means pipeline and nmon export."""

import numpy as np
import pytest

from repro.errors import MonitorError
from repro.ml import CanopyKMeansPipeline, LocalExecutor, points_as_records
from repro.monitor.export import parse_nmon, write_nmon
from repro.monitor.nmon import NmonSample, NodeSeries

CENTERS = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 8.0]])


def blobs(seed=0):
    rng = np.random.default_rng(seed)
    return np.vstack([rng.normal(c, 0.6, size=(40, 2)) for c in CENTERS])


def test_pipeline_seeds_kmeans_from_canopies():
    points = blobs()
    executor = LocalExecutor({"/in": points_as_records(points)})
    result = CanopyKMeansPipeline(t1=6.0, t2=3.0).run(executor, "/in")
    assert result.canopy.k == 3
    assert result.kmeans.k == 3
    for truth in CENTERS:
        assert min(np.linalg.norm(m.center_array() - truth)
                   for m in result.models) < 1.0
    assert len(result.assignments) == len(points)
    assert result.runtime_s == result.canopy.runtime_s + \
        result.kmeans.runtime_s


def test_pipeline_max_k_caps_seeds():
    points = blobs()
    executor = LocalExecutor({"/in": points_as_records(points)})
    # Very tight thresholds make many canopies; max_k trims them.
    result = CanopyKMeansPipeline(t1=1.5, t2=0.7, max_k=3).run(
        executor, "/in")
    assert result.canopy.k > 3
    assert result.kmeans.k == 3


def test_pipeline_rejects_empty_canopy_stage():
    executor = LocalExecutor({"/in": []})
    with pytest.raises(Exception):
        CanopyKMeansPipeline(t1=2.0, t2=1.0).run(executor, "/in")


# --- nmon export --------------------------------------------------------------

def sample_series():
    series = NodeSeries("vm-test")
    for i in range(4):
        series.samples.append(NmonSample(
            time=float(i * 5), vm="vm-test", cpu_util=0.25 * i,
            memory_fraction=0.4, disk_bytes_delta=1000.0 * i,
            net_tx_delta=10.0 * i, net_rx_delta=20.0 * i, activity=i))
    return series


def test_nmon_roundtrip():
    original = sample_series()
    text = write_nmon(original)
    assert text.startswith("AAA,host,vm-test")
    parsed = parse_nmon(text)
    assert parsed.vm == "vm-test"
    assert len(parsed) == len(original)
    for a, b in zip(original.samples, parsed.samples):
        assert b.time == pytest.approx(a.time, abs=1e-3)
        assert b.cpu_util == pytest.approx(a.cpu_util, abs=1e-4)
        assert b.disk_bytes_delta == pytest.approx(a.disk_bytes_delta)
        assert b.net_rx_delta == pytest.approx(a.net_rx_delta)
        assert b.activity == a.activity


def test_nmon_export_requires_samples():
    with pytest.raises(MonitorError):
        write_nmon(NodeSeries("empty"))


def test_nmon_parse_requires_header():
    with pytest.raises(MonitorError):
        parse_nmon("ZZZZ,T0001,0.0\n")


def test_nmon_parse_detects_missing_sections():
    text = "AAA,host,x\nZZZZ,T0001,0.0\nCPU_ALL,T0001,10.0\n"
    with pytest.raises(MonitorError):
        parse_nmon(text)
