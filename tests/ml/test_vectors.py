"""Unit + property tests for the distance measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.vectors import (ChebyshevDistance, CosineDistance,
                              EuclideanDistance, ManhattanDistance,
                              SquaredEuclideanDistance, TanimotoDistance,
                              MEASURES, measure_by_name)

ALL = [EuclideanDistance(), SquaredEuclideanDistance(), ManhattanDistance(),
       ChebyshevDistance(), CosineDistance(), TanimotoDistance()]


def test_known_euclidean():
    assert EuclideanDistance().distance([0, 0], [3, 4]) == pytest.approx(5.0)
    assert SquaredEuclideanDistance().distance([0, 0], [3, 4]) == \
        pytest.approx(25.0)


def test_known_manhattan_chebyshev():
    assert ManhattanDistance().distance([1, 2], [4, 6]) == pytest.approx(7.0)
    assert ChebyshevDistance().distance([1, 2], [4, 6]) == pytest.approx(4.0)


def test_known_cosine():
    assert CosineDistance().distance([1, 0], [0, 1]) == pytest.approx(1.0)
    assert CosineDistance().distance([2, 0], [5, 0]) == pytest.approx(0.0)
    assert CosineDistance().distance([1, 0], [-1, 0]) == pytest.approx(2.0)


def test_cosine_zero_vector_defined():
    assert CosineDistance().distance([0, 0], [1, 1]) == pytest.approx(1.0)


def test_known_tanimoto():
    # identical vectors -> similarity 1 -> distance 0
    assert TanimotoDistance().distance([1, 2], [1, 2]) == pytest.approx(0.0)
    # orthogonal -> similarity 0 -> distance 1
    assert TanimotoDistance().distance([1, 0], [0, 1]) == pytest.approx(1.0)


def test_to_centers_shape():
    points = np.random.default_rng(0).normal(size=(7, 3))
    centers = np.random.default_rng(1).normal(size=(4, 3))
    for measure in ALL:
        matrix = measure.to_centers(points, centers)
        assert matrix.shape == (7, 4)


def test_to_centers_matches_scalar():
    rng = np.random.default_rng(2)
    points = rng.normal(size=(5, 4))
    centers = rng.normal(size=(3, 4))
    for measure in ALL:
        matrix = measure.to_centers(points, centers)
        for i in range(5):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(
                    measure.distance(points[i], centers[j]), abs=1e-9)


def test_measure_by_name():
    for name in MEASURES:
        assert measure_by_name(name).name == name
    with pytest.raises(ValueError):
        measure_by_name("nope")


_vec = arrays(np.float64, 4,
              elements=st.floats(-50, 50, allow_nan=False))


@settings(max_examples=60, deadline=None)
@given(_vec, _vec)
def test_property_symmetry_and_identity(a, b):
    for measure in ALL:
        d_ab = measure.distance(a, b)
        d_ba = measure.distance(b, a)
        assert d_ab == pytest.approx(d_ba, abs=1e-6)
        assert d_ab >= -1e-9
        if isinstance(measure, CosineDistance) and float((a * a).sum()) == 0.0:
            # cosine is undefined at (numerically) zero norm; our
            # convention returns distance 1 there.
            continue
        assert measure.distance(a, a) == pytest.approx(0.0, abs=1e-4)


@settings(max_examples=60, deadline=None)
@given(_vec, _vec, _vec)
def test_property_triangle_inequality_metrics(a, b, c):
    # Euclidean, Manhattan and Chebyshev are metrics.
    for measure in (EuclideanDistance(), ManhattanDistance(),
                    ChebyshevDistance()):
        ab = measure.distance(a, b)
        bc = measure.distance(b, c)
        ac = measure.distance(a, c)
        assert ac <= ab + bc + 1e-6
