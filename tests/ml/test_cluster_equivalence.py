"""Local-vs-cluster equivalence: every driver produces identical models
whether its jobs run functionally (LocalExecutor) or on the simulated
hadoop virtual cluster (ClusterExecutor) — DESIGN.md decision 1."""

import numpy as np
import pytest

from repro.config import PlatformConfig
from repro.datasets.sample_data import generate_sample_data
from repro.ml import (CanopyDriver, ClusterExecutor, FuzzyKMeansDriver,
                      KMeansDriver, LocalExecutor, MeanShiftDriver,
                      MinHashDriver, points_as_records)
from repro.ml.base import stage_points
from repro.platform import ClusterSpec, VHadoopPlatform


@pytest.fixture(scope="module")
def points():
    pts, _ = generate_sample_data(np.random.default_rng(7))
    return pts[:300]


def cluster_executor(points, seed=1):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster("eq", ClusterSpec.single_host(6))
    stage_points(platform, cluster, "/in", points)
    return ClusterExecutor(platform.runner(cluster), cluster)


def local_executor(points):
    return LocalExecutor({"/in": points_as_records(points)}, seed=1)


def assert_same_models(a, b):
    assert a.k == b.k
    assert np.allclose(a.centers(), b.centers(), atol=1e-9)
    assert [m.weight for m in a.models] == pytest.approx(
        [m.weight for m in b.models])


def test_kmeans_equivalence(points):
    init = [tuple(p) for p in points[:3]]
    local = KMeansDriver(initial_centers=init, max_iterations=6).run(
        local_executor(points), "/in")
    cluster = KMeansDriver(initial_centers=init, max_iterations=6).run(
        cluster_executor(points), "/in")
    assert_same_models(local, cluster)
    assert local.assignments == cluster.assignments
    assert local.iterations == cluster.iterations
    assert cluster.runtime_s > 0 and local.runtime_s == 0


def test_canopy_equivalence(points):
    local = CanopyDriver(t1=3.0, t2=1.5).run(local_executor(points), "/in")
    cluster = CanopyDriver(t1=3.0, t2=1.5).run(cluster_executor(points),
                                               "/in")
    assert_same_models(local, cluster)


def test_fuzzy_equivalence(points):
    init = [tuple(p) for p in points[:3]]
    local = FuzzyKMeansDriver(initial_centers=init, max_iterations=4).run(
        local_executor(points), "/in")
    cluster = FuzzyKMeansDriver(initial_centers=init, max_iterations=4).run(
        cluster_executor(points), "/in")
    assert_same_models(local, cluster)


def test_meanshift_equivalence(points):
    local = MeanShiftDriver(t1=2.0, t2=1.0, max_iterations=4).run(
        local_executor(points), "/in")
    cluster = MeanShiftDriver(t1=2.0, t2=1.0, max_iterations=4).run(
        cluster_executor(points), "/in")
    assert_same_models(local, cluster)


def test_minhash_equivalence(points):
    local = MinHashDriver(num_hashes=8, bucket=2.0, seed=5).run(
        local_executor(points), "/in")
    cluster = MinHashDriver(num_hashes=8, bucket=2.0, seed=5).run(
        cluster_executor(points), "/in")
    assert local.assignments == cluster.assignments
    assert local.k == cluster.k
