"""Tests for the classification and recommendation drivers."""

import pytest

from repro.config import PlatformConfig
from repro.errors import ClusteringError
from repro.ml import ClusterExecutor, LocalExecutor
from repro.ml.naivebayes import NaiveBayesDriver, NaiveBayesModel
from repro.ml.recommender import ItemCooccurrenceRecommender
from repro.platform import ClusterSpec, VHadoopPlatform

TRAIN_DOCS = [
    (0, ("spam", ("buy", "cheap", "pills", "now"))),
    (1, ("spam", ("cheap", "watches", "buy", "buy"))),
    (2, ("spam", ("free", "pills", "offer"))),
    (3, ("ham", ("meeting", "tomorrow", "agenda"))),
    (4, ("ham", ("lunch", "tomorrow", "noon"))),
    (5, ("ham", ("project", "agenda", "review", "meeting"))),
]
TEST_DOCS = [
    (10, ("buy", "pills", "offer")),
    (11, ("cheap", "watches")),
    (12, ("meeting", "agenda")),
    (13, ("lunch", "noon", "tomorrow")),
]
TEST_TRUTH = {10: "spam", 11: "spam", 12: "ham", 13: "ham"}

PREFS = [
    ((u, i), r) for u, i, r in [
        ("alice", "matrix", 5.0), ("alice", "inception", 4.0),
        ("alice", "heat", 2.0),
        ("bob", "matrix", 4.0), ("bob", "inception", 5.0),
        ("bob", "tenet", 4.0),
        ("carol", "matrix", 5.0), ("carol", "heat", 4.0),
        ("dave", "inception", 3.0), ("dave", "tenet", 5.0),
        ("dave", "heat", 2.0),
    ]
]


# --- naive bayes ------------------------------------------------------------

def test_naive_bayes_learns_and_classifies():
    executor = LocalExecutor({"/train": TRAIN_DOCS, "/test": TEST_DOCS})
    driver = NaiveBayesDriver()
    model, _t = driver.train(executor, "/train")
    assert set(model.labels) == {"spam", "ham"}
    predictions, _t = driver.classify(executor, model, "/test")
    assert predictions == TEST_TRUTH
    assert driver.accuracy(predictions, TEST_TRUTH) == 1.0


def test_naive_bayes_model_scores_sane():
    executor = LocalExecutor({"/train": TRAIN_DOCS})
    model, _t = NaiveBayesDriver().train(executor, "/train")
    spam_score = model.score(("buy", "cheap"), "spam")
    ham_score = model.score(("buy", "cheap"), "ham")
    assert spam_score > ham_score
    # Unseen tokens fall back to the smoothed floor, not a crash.
    assert model.classify(("zzz", "qqq")) in ("spam", "ham")


def test_naive_bayes_priors_reflect_class_balance():
    skewed = TRAIN_DOCS + [(6, ("ham", ("extra",))),
                           (7, ("ham", ("more",)))]
    executor = LocalExecutor({"/train": skewed})
    model, _t = NaiveBayesDriver().train(executor, "/train")
    assert model.log_priors["ham"] > model.log_priors["spam"]


def test_naive_bayes_on_cluster_matches_local():
    local_exec = LocalExecutor({"/train": TRAIN_DOCS, "/test": TEST_DOCS})
    driver = NaiveBayesDriver()
    local_model, _ = driver.train(local_exec, "/train")
    local_pred, _ = driver.classify(local_exec, local_model, "/test")

    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=17))
    cluster = platform.provision_cluster("nb", ClusterSpec.single_host(4))
    platform.upload(cluster, "/train", TRAIN_DOCS, timed=False)
    platform.upload(cluster, "/test", TEST_DOCS, timed=False)
    cluster_exec = ClusterExecutor(platform.runner(cluster), cluster)
    cluster_model, train_s = driver.train(cluster_exec, "/train")
    cluster_pred, classify_s = driver.classify(cluster_exec, cluster_model,
                                               "/test")
    assert cluster_pred == local_pred
    assert cluster_model.log_priors == local_model.log_priors
    assert train_s > 0 and classify_s > 0


def test_naive_bayes_validation():
    with pytest.raises(ClusteringError):
        NaiveBayesDriver(alpha=0.0)
    executor = LocalExecutor({"/empty": [(0, ("x", ()))]})
    model, _ = NaiveBayesDriver().train(executor, "/empty")
    assert model.labels == ("x",)
    with pytest.raises(ClusteringError):
        NaiveBayesDriver.accuracy({}, {})


# --- recommender ---------------------------------------------------------------

def test_recommender_suggests_cooccurring_items():
    executor = LocalExecutor({"/prefs": PREFS})
    result = ItemCooccurrenceRecommender(top_n=2).run(executor, "/prefs")
    # Carol likes matrix+heat; matrix co-occurs with inception twice.
    carol = dict(result.for_user("carol"))
    assert "inception" in carol
    # Never recommend something the user already has.
    assert "matrix" not in carol and "heat" not in carol


def test_recommender_cooccurrence_counts():
    executor = LocalExecutor({"/prefs": PREFS})
    result = ItemCooccurrenceRecommender().run(executor, "/prefs")
    # alice and bob both have (inception, matrix).
    assert result.cooccurrence[("inception", "matrix")] == 2
    # Symmetric pairs stored once, in sorted order.
    assert ("matrix", "inception") not in result.cooccurrence


def test_recommender_top_n_limits():
    executor = LocalExecutor({"/prefs": PREFS})
    result = ItemCooccurrenceRecommender(top_n=1).run(executor, "/prefs")
    assert all(len(recs) <= 1 for recs in result.recommendations.values())


def test_recommender_on_cluster_matches_local():
    local = ItemCooccurrenceRecommender(top_n=3).run(
        LocalExecutor({"/prefs": PREFS}), "/prefs")

    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=19))
    cluster = platform.provision_cluster("rec", ClusterSpec.single_host(4))
    platform.upload(cluster, "/prefs", PREFS, timed=False)
    remote = ItemCooccurrenceRecommender(top_n=3).run(
        ClusterExecutor(platform.runner(cluster), cluster), "/prefs")
    assert remote.recommendations == local.recommendations
    assert remote.cooccurrence == local.cooccurrence
    assert remote.runtime_s > 0


def test_recommender_validation():
    with pytest.raises(ClusteringError):
        ItemCooccurrenceRecommender(top_n=0)
