"""Unit tests for the ASCII DisplayClustering renderer."""

import numpy as np

from repro.ml import KMeansDriver, LocalExecutor, points_as_records
from repro.ml.base import ClusterModel
from repro.ml.display import (AsciiCanvas, describe_result, render_clusters,
                              render_history, render_points)


def grid_points():
    rng = np.random.default_rng(3)
    return rng.normal(size=(100, 2))


def test_render_points_draws_dots():
    out = render_points(grid_points(), width=40, height=12)
    lines = out.splitlines()
    assert len(lines) == 14  # 12 rows + 2 borders
    assert all(len(line) == 42 for line in lines)
    assert "." in out


def test_render_clusters_marks_centers_and_digits():
    pts = grid_points()
    models = [ClusterModel(0, (0.0, 0.0), weight=10, radius=1.0),
              ClusterModel(1, (1.0, 1.0), weight=5, radius=0.5)]
    assignments = {i: i % 2 for i in range(len(pts))}
    out = render_clusters(pts, models, assignments, width=50, height=20)
    assert "A" in out and "B" in out
    assert "+" in out  # radius rings
    assert "0" in out and "1" in out


def test_render_history_overlays_iterations():
    pts = grid_points()
    executor = LocalExecutor({"/in": points_as_records(pts)})
    result = KMeansDriver(k=2, max_iterations=8).run(executor, "/in")
    out = render_history(pts, result, width=50, height=20)
    assert "A" in out and "B" in out
    if result.iterations > 1:
        assert "'" in out  # faint earlier rings


def test_canvas_out_of_window_points_ignored():
    canvas = AsciiCanvas(np.array([[0.0, 0.0], [1.0, 1.0]]), width=10,
                         height=5)
    canvas.plot(100.0, 100.0, "X")
    assert "X" not in canvas.render()


def test_describe_result_mentions_algorithm():
    executor = LocalExecutor({"/in": points_as_records(grid_points())})
    result = KMeansDriver(k=2, max_iterations=5).run(executor, "/in")
    text = describe_result(result)
    assert "kmeans" in text
    assert "cluster 0" in text
