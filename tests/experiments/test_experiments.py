"""Small-scale runs of every experiment harness, asserting the paper's
qualitative shapes (DESIGN.md §4)."""

import pytest

from repro.experiments import format_table
from repro.experiments.common import ExperimentResult
from repro.experiments import (fig2_wordcount, fig3_mrbench,
                               fig4_terasort_dfsio, fig5_migration,
                               fig6_synthetic_control,
                               fig7_display_clustering, fig8_cluster_visuals,
                               table1_benchmarks, telemetry_demo)

pytestmark = pytest.mark.filterwarnings("ignore")


# --- result plumbing ---------------------------------------------------------

def test_experiment_result_row_width_checked():
    result = ExperimentResult("x", "t", columns=("a", "b"))
    result.add(1, 2)
    with pytest.raises(ValueError):
        result.add(1, 2, 3)
    assert result.column("b") == [2]


def test_format_table_renders():
    result = ExperimentResult("x", "t", columns=("a", "b"))
    result.add(1, 2.5)
    result.note("hello")
    text = format_table(result)
    assert "x: t" in text and "2.50" in text and "note: hello" in text


# --- table 1 -------------------------------------------------------------------

def test_table1_all_benchmarks_run():
    result = table1_benchmarks.run(seed=0)
    assert [row[0] for row in result.rows] == ["Wordcount", "MRBench",
                                               "TeraSort", "DFSIOTest"]
    assert all(row[2] for row in result.rows)  # ran_ok column


# --- fig 2 ------------------------------------------------------------------------

def test_fig2_cross_domain_slower_and_grows():
    result = fig2_wordcount.run(sizes_mb=(64, 192), seed=0)
    normal = result.column("normal_s")
    cross = result.column("cross_domain_s")
    assert all(c >= n for n, c in zip(normal, cross))
    assert normal[1] > normal[0]  # bigger input, longer time
    assert cross[1] > cross[0]


# --- fig 3 -----------------------------------------------------------------------

def test_fig3_scaling_shapes():
    result_a = fig3_mrbench.run_map_scaling(scales=(1, 6), seed=0, runs=1)
    normal = result_a.column("normal_s")
    cross = result_a.column("cross_domain_s")
    assert normal[1] > normal[0]
    assert all(c > n for n, c in zip(normal, cross))

    result_b = fig3_mrbench.run_reduce_scaling(scales=(1, 6), seed=0, runs=1)
    assert result_b.column("normal_s")[1] > result_b.column("normal_s")[0]


# --- fig 4 -----------------------------------------------------------------------

def test_fig4a_terasort_shapes():
    result = fig4_terasort_dfsio.run_terasort_sweep(sizes_mb=(100, 400),
                                                    seed=0)
    assert all(row[-1] for row in result.rows)  # validated
    gen_n = result.column("normal_gen_s")
    sort_n = result.column("normal_sort_s")
    assert gen_n[1] > gen_n[0] and sort_n[1] > sort_n[0]
    assert result.column("cross_sort_s")[1] > sort_n[1]


def test_fig4b_dfsio_shapes():
    result = fig4_terasort_dfsio.run_dfsio_sweep(n_files=4, file_mb=32,
                                                 seed=0)
    rows = {row[0]: row for row in result.rows}
    for layout in ("normal", "cross-domain"):
        _l, write, read = rows[layout]
        assert read > write
    assert rows["cross-domain"][1] < rows["normal"][1]  # writes slower


# --- fig 5 / table 2 -----------------------------------------------------------

@pytest.fixture(scope="module")
def migration_reports():
    return {
        "idle.1024": fig5_migration.migrate_cluster_under(
            "idle", 1024 * 1024 * 1024, seed=0),
        "idle.512": fig5_migration.migrate_cluster_under(
            "idle", 512 * 1024 * 1024, seed=0),
        "wc.1024": fig5_migration.migrate_cluster_under(
            "wordcount", 1024 * 1024 * 1024, seed=0),
    }


def test_table2_memory_scaling(migration_reports):
    big = migration_reports["idle.1024"]
    small = migration_reports["idle.512"]
    assert big.overall_migration_time_s > 1.4 * small.overall_migration_time_s
    # Downtime does NOT track memory (paper observation i).
    ratio = big.overall_downtime_s / small.overall_downtime_s
    assert 0.5 < ratio < 2.0


def test_table2_wordcount_overheads(migration_reports):
    idle = migration_reports["idle.1024"]
    busy = migration_reports["wc.1024"]
    assert busy.overall_migration_time_s > 1.5 * idle.overall_migration_time_s
    assert busy.overall_downtime_s > 5.0 * idle.overall_downtime_s
    # Per-node downtime varies widely only under load (observation iii).
    assert busy.downtime_spread() > 3.0 * idle.downtime_spread()


def test_fig5_all_vms_arrive(migration_reports):
    for report in migration_reports.values():
        assert len(report.records) == 16
        assert all(r.destination == "pm1" for r in report.records)


# --- fig 6 / fig 7 ----------------------------------------------------------------

def test_fig6_runtime_grows_with_cluster_scale():
    result = fig6_synthetic_control.run(scales=(2, 16), n_per_class=30,
                                        max_iterations=3, seed=0)
    for column in ("canopy_s", "dirichlet_s", "meanshift_s"):
        series = result.column(column)
        assert series[-1] > series[0], column


def test_fig7_runtime_relatively_smooth():
    result = fig7_display_clustering.run(scales=(2, 16), max_iterations=3,
                                         seed=0)
    for algo in fig7_display_clustering.ALGORITHMS:
        series = result.column(algo)
        assert max(series) < 2.5 * min(series), algo


# --- fig 8 --------------------------------------------------------------------------

def test_fig8_panels_rendered():
    result = fig8_cluster_visuals.run(seed=42, max_iterations=3)
    for panel in fig8_cluster_visuals.PANELS:
        assert panel in result.artifacts
        art = result.artifacts[panel]
        assert art.count("\n") > 10
    sample = result.artifacts["sample-data"]
    assert "." in sample
    assert "A" in result.artifacts["kmeans"]


# --- telemetry --------------------------------------------------------------------

def test_telemetry_demo_accounts_for_the_makespan():
    import json

    result = telemetry_demo.run(seed=0, quick=True)
    categories = [row[0] for row in result.rows]
    assert {"job", "task", "shuffle"} <= set(categories)
    # Critical path note reports makespan == job elapsed (within format).
    assert any("makespan" in note for note in result.notes)
    trace = json.loads(result.artifacts["chrome_trace.json"])
    cats = {r["cat"] for r in trace["traceEvents"] if r["ph"] == "X"}
    assert len(cats) >= 4
    assert "# TYPE" in result.artifacts["metrics.prom"]
