"""Tests for experiment result export/import."""

import json

import pytest

from repro.cli import main
from repro.experiments.common import ExperimentResult
from repro.experiments.report import (read_json, write_all, write_csv,
                                      write_json)


@pytest.fixture()
def result():
    r = ExperimentResult("figX", "demo", columns=("a", "b"))
    r.add(1, 2.5)
    r.add(3, 4.5)
    r.note("a note")
    r.artifacts["panel"] = "+---+\n| . |\n+---+"
    return r


def test_write_csv(result, tmp_path):
    path = write_csv(result, tmp_path)
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,2.5"
    assert len(lines) == 3


def test_json_roundtrip(result, tmp_path):
    path = write_json(result, tmp_path)
    loaded = read_json(path)
    assert loaded.experiment_id == "figX"
    assert loaded.columns == ("a", "b")
    assert loaded.rows == [(1, 2.5), (3, 4.5)]
    assert loaded.notes == ["a note"]


def test_write_all_includes_artifacts(result, tmp_path):
    paths = write_all(result, tmp_path)
    names = {p.name for p in paths}
    assert names == {"figX.csv", "figX.json", "figX.panel.txt"}
    assert "| . |" in (tmp_path / "figX.panel.txt").read_text()


def test_json_is_valid(result, tmp_path):
    path = write_json(result, tmp_path)
    payload = json.loads(path.read_text())
    assert payload["title"] == "demo"


def test_cli_out_flag(tmp_path, capsys):
    assert main(["fig8", "--out", str(tmp_path)]) == 0
    written = {p.name for p in tmp_path.iterdir()}
    assert "fig8.csv" in written
    assert "fig8.json" in written
    assert any(name.endswith(".kmeans.txt") for name in written)
