"""Unit tests for the FIFO / Fair / Capacity scheduling policies."""

import pytest

from repro.errors import ConfigError
from repro.scheduler import (CapacityScheduler, FairScheduler, FifoScheduler,
                             PoolConfig, QueueConfig)


class _Job:
    def __init__(self, name):
        self.name = name


class _Ex:
    """Just enough of a JobExecution for policy arbitration."""

    def __init__(self, name, pool, seq, running=0, pending=0, kind="map"):
        self.job = _Job(name)
        self.pool = pool
        self.seq = seq
        self.running = {"map": 0, "reduce": 0}
        self.running[kind] = running
        self._pending = {kind: pending}

    def pending_count(self, kind):
        return self._pending.get(kind, 0)


# -- config validation -------------------------------------------------------

def test_pool_config_validation():
    with pytest.raises(ConfigError):
        PoolConfig(name="")
    with pytest.raises(ConfigError):
        PoolConfig(name="p", weight=0.0)
    with pytest.raises(ConfigError):
        PoolConfig(name="p", min_share=-1)
    with pytest.raises(ConfigError):
        PoolConfig(name="p", preemption_timeout_s=0.0)


def test_queue_config_validation():
    with pytest.raises(ConfigError):
        QueueConfig(name="", capacity=0.5)
    with pytest.raises(ConfigError):
        QueueConfig(name="q", capacity=0.0)
    with pytest.raises(ConfigError):
        QueueConfig(name="q", capacity=1.5)
    with pytest.raises(ConfigError):
        QueueConfig(name="q", capacity=0.5, max_capacity=0.0)


def test_fair_scheduler_check_interval_validation():
    with pytest.raises(ConfigError):
        FairScheduler(preemption_check_s=0.0)


# -- FIFO --------------------------------------------------------------------

def test_fifo_selects_lowest_sequence():
    policy = FifoScheduler()
    a = _Ex("a", "default", 2, pending=1)
    b = _Ex("b", "default", 0, pending=1)
    c = _Ex("c", "default", 1, pending=1)
    assert policy.select([a, b, c], "map", active=[a, b, c],
                         total_slots=4) is b
    assert policy.select([], "map", active=[], total_slots=4) is None
    assert not policy.preemption_enabled
    assert policy.shares([a, b, c], "map", 4) == {}


# -- Fair --------------------------------------------------------------------

def test_fair_starved_pool_wins_over_weight():
    policy = FairScheduler(pools=[PoolConfig("guaranteed", min_share=2),
                                  PoolConfig("heavy", weight=10.0)])
    g = _Ex("g", "guaranteed", 5, running=0, pending=3)
    h = _Ex("h", "heavy", 0, running=0, pending=3)
    active = [g, h]
    assert policy.select(active, "map", active=active, total_slots=8) is g


def test_fair_orders_by_running_per_weight():
    policy = FairScheduler(pools=[PoolConfig("light", weight=1.0),
                                  PoolConfig("heavy", weight=2.0)])
    light = _Ex("l", "light", 0, running=2, pending=3)
    heavy = _Ex("h", "heavy", 1, running=2, pending=3)
    active = [light, heavy]
    # 2/2 < 2/1: the heavier pool is the more underserved one.
    assert policy.select(active, "map", active=active, total_slots=8) is heavy


def test_fair_within_pool_is_fifo():
    policy = FairScheduler()
    first = _Ex("first", "p", 0, pending=1)
    second = _Ex("second", "p", 1, pending=1)
    active = [first, second]
    assert policy.select([second, first], "map", active=active,
                         total_slots=4) is first


def test_fair_auto_creates_unknown_pools():
    policy = FairScheduler()
    ex = _Ex("x", "surprise", 0, pending=1)
    policy.register_job(ex)
    assert policy.pool("surprise").weight == 1.0


def test_fair_shares_waterfill_with_min_share_floor():
    policy = FairScheduler(pools=[PoolConfig("a", min_share=4),
                                  PoolConfig("b")])
    a = _Ex("a", "a", 0, running=0, pending=10)
    b = _Ex("b", "b", 1, running=0, pending=10)
    shares = policy.shares([a, b], "map", 10)
    # a gets its floor of 4, the remaining 6 split evenly (equal weights).
    assert shares["a"] == pytest.approx(7.0)
    assert shares["b"] == pytest.approx(3.0)


def test_fair_shares_scale_down_oversubscribed_min_shares():
    policy = FairScheduler(pools=[PoolConfig("a", min_share=8),
                                  PoolConfig("b", min_share=8)])
    a = _Ex("a", "a", 0, pending=8)
    b = _Ex("b", "b", 1, pending=8)
    shares = policy.shares([a, b], "map", 8)
    assert shares["a"] == pytest.approx(4.0)
    assert shares["b"] == pytest.approx(4.0)


def test_fair_shares_capped_by_demand():
    policy = FairScheduler()
    small = _Ex("s", "small", 0, pending=2)
    big = _Ex("b", "big", 1, pending=100)
    shares = policy.shares([small, big], "map", 10)
    assert shares["small"] == pytest.approx(2.0)
    assert shares["big"] == pytest.approx(8.0)


def test_fair_preemption_enabled_only_with_timeout():
    assert not FairScheduler(pools=[PoolConfig("p")]).preemption_enabled
    assert FairScheduler(
        pools=[PoolConfig("p", min_share=1,
                          preemption_timeout_s=5.0)]).preemption_enabled


# -- Capacity ----------------------------------------------------------------

def test_capacity_validation():
    with pytest.raises(ConfigError):
        CapacityScheduler(queues=[])
    with pytest.raises(ConfigError):
        CapacityScheduler(queues=[QueueConfig("a", 0.5),
                                  QueueConfig("a", 0.5)])
    with pytest.raises(ConfigError):
        CapacityScheduler(queues=[QueueConfig("a", 0.5, parent="ghost")])
    with pytest.raises(ConfigError):
        CapacityScheduler(queues=[QueueConfig("a", 0.7),
                                  QueueConfig("b", 0.7)])


def test_capacity_guaranteed_fraction_is_product_of_ancestors():
    policy = CapacityScheduler(queues=[
        QueueConfig("prod", 0.6),
        QueueConfig("adhoc", 0.4),
        QueueConfig("etl", 0.5, parent="prod"),
        QueueConfig("reports", 0.5, parent="prod"),
    ])
    assert policy.guaranteed["etl"] == pytest.approx(0.3)
    assert policy.guaranteed["adhoc"] == pytest.approx(0.4)
    assert not policy.is_leaf("prod")
    assert policy.is_leaf("etl")


def test_capacity_rejects_jobs_on_non_leaf_queues():
    policy = CapacityScheduler(queues=[
        QueueConfig("prod", 1.0),
        QueueConfig("etl", 1.0, parent="prod"),
    ])
    with pytest.raises(ConfigError):
        policy.register_job(_Ex("x", "prod", 0))
    with pytest.raises(ConfigError):
        policy.register_job(_Ex("x", "nowhere", 0))
    policy.register_job(_Ex("x", "etl", 0))  # leaves are fine


def test_capacity_serves_most_underserved_queue():
    policy = CapacityScheduler(queues=[QueueConfig("a", 0.5),
                                       QueueConfig("b", 0.5)])
    a = _Ex("a", "a", 0, running=4, pending=3)
    b = _Ex("b", "b", 1, running=1, pending=3)
    active = [a, b]
    assert policy.select(active, "map", active=active, total_slots=10) is b


def test_capacity_max_capacity_caps_elastic_growth():
    policy = CapacityScheduler(queues=[
        QueueConfig("capped", 0.5, max_capacity=0.25),
        QueueConfig("open", 0.5),
    ])
    capped = _Ex("c", "capped", 0, running=2, pending=5)
    active = [capped]
    # 2 running >= 0.25 * 8: the queue may not grow, even with demand.
    assert policy.select([capped], "map", active=active,
                         total_slots=8) is None
    # The other queue may elastically take the whole cluster.
    open_ = _Ex("o", "open", 1, running=6, pending=5)
    active = [capped, open_]
    assert policy.select([open_], "map", active=active, total_slots=8) is open_


def test_capacity_shares_are_guarantee_capped():
    policy = CapacityScheduler(queues=[QueueConfig("a", 0.25),
                                       QueueConfig("b", 0.75)])
    a = _Ex("a", "a", 0, pending=100)
    b = _Ex("b", "b", 1, pending=1)
    shares = policy.shares([a, b], "map", 8)
    assert shares["a"] == pytest.approx(2.0)   # 0.25 * 8, demand-unbounded
    assert shares["b"] == pytest.approx(1.0)   # demand-capped
