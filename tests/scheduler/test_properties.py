"""Property-based tests (hypothesis) on scheduler invariants.

* work conservation: slot workers never park while dispatchable work exists;
* FIFO: identical jobs start and finish in submission order;
* fair-share dominance: a pool at its min-share is never preempted;
* functional identity: every concurrently-scheduled job's output equals an
  in-process LocalJobRunner run, under any policy.
"""

import collections

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import PlatformConfig
from repro.mapreduce import LocalJobRunner
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.scheduler import (CapacityScheduler, FairScheduler, FifoScheduler,
                             PoolConfig, QueueConfig)
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

_SLOW = dict(deadline=None,
             suppress_health_check=[HealthCheck.too_slow,
                                    HealthCheck.data_too_large])

LINES = ["zeta eta theta iota", "eta theta iota", "theta iota"] * 6
RECORDS = lines_as_records(LINES)
EXPECTED = dict(collections.Counter(" ".join(LINES).split()))


def make_platform(seed):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster("prop",
                                        ClusterSpec.spread(6, hosts=2))
    platform.upload(cluster, "/in", RECORDS, sizeof=line_record_sizeof,
                    timed=False)
    return platform, cluster


def make_jobs(n_jobs, pools):
    jobs = []
    for i in range(n_jobs):
        job = wordcount_job("/in", f"/out-{i}", n_reduces=2)
        job.name = f"job-{i}"
        job.map_cpu_per_record = 0.05
        jobs.append((job, pools[i % len(pools)]))
    return jobs


POLICIES = {
    "fifo": lambda: FifoScheduler(),
    "fair": lambda: FairScheduler(pools=[PoolConfig("p0", weight=2.0),
                                         PoolConfig("p1", min_share=2)]),
    "capacity": lambda: CapacityScheduler(queues=[QueueConfig("p0", 0.5),
                                                  QueueConfig("p1", 0.5)]),
}


@settings(max_examples=8, **_SLOW)
@given(st.integers(1, 4), st.sampled_from(sorted(POLICIES)),
       st.integers(0, 3))
def test_outputs_identical_to_local_runner_and_work_conserving(
        n_jobs, policy_name, seed):
    platform, cluster = make_platform(seed)
    jobs = make_jobs(n_jobs, pools=["p0", "p1"])
    reports, sched = platform.submit_jobs(cluster, jobs,
                                          policy=POLICIES[policy_name]())
    for (job, _pool), report in zip(jobs, reports):
        assert platform.collect(cluster, report) == \
            LocalJobRunner().run(job, RECORDS)
    # A slot worker never sleeps while dispatchable tasks are pending.
    assert sched.idle_while_pending_s == 0.0
    assert sched.n_jobs == n_jobs


@settings(max_examples=8, **_SLOW)
@given(st.integers(2, 5), st.integers(0, 3))
def test_fifo_preserves_submission_order(n_jobs, seed):
    platform, cluster = make_platform(seed)
    jobs = make_jobs(n_jobs, pools=["default"])
    reports, _sched = platform.submit_jobs(cluster, jobs,
                                           policy=FifoScheduler())
    firsts = [r.first_task_at for r in reports]
    finishes = [r.finished_at for r in reports]
    # FIFO guarantees dispatch order, not completion order: a later job's
    # reduces can ride an emptier cluster and overtake an earlier job's
    # speculative tail, so only first-task times are totally ordered.
    assert firsts == sorted(firsts)
    assert all(f > s for s, f in zip(firsts, finishes))


@settings(max_examples=6, **_SLOW)
@given(st.integers(1, 3), st.integers(2, 4), st.integers(0, 2))
def test_pool_at_min_share_is_never_preempted(min_share, timeout_s, seed):
    """Fair-share dominance: every kill leaves the victim pool at or above
    max(min_share, fair share) — a pool at its guarantee is inviolable."""
    platform, cluster = make_platform(seed)
    policy = FairScheduler(pools=[
        PoolConfig("claimer", min_share=4,
                   preemption_timeout_s=float(timeout_s)),
        PoolConfig("victim", min_share=min_share),
    ], preemption_check_s=1.0)
    jobs = []
    hog = wordcount_job("/in", "/hog", n_reduces=1)
    hog.name = "hog"
    hog.map_cpu_per_record = 4.0
    hog.force_num_maps = 30
    jobs.append((hog, "victim"))
    late = wordcount_job("/in", "/late", n_reduces=1)
    late.name = "late"
    late.map_cpu_per_record = 0.2
    jobs.append((late, "claimer"))
    _reports, sched = platform.submit_jobs(cluster, jobs, policy=policy)
    kills = list(platform.tracer.select("scheduler.preempt"))
    by_sweep = collections.defaultdict(list)
    for k in kills:
        assert k["victim_floor"] >= k["victim_min_share"]
        by_sweep[(k.time, k["victim_pool"])].append(k)
    for sweep in by_sweep.values():
        assert len(sweep) <= sweep[0]["victim_running"] - \
            sweep[0]["victim_floor"]
    assert sched.idle_while_pending_s == 0.0
