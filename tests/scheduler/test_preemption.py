"""Preemption: starved min-share pools claim slots; guarantees hold."""

import collections


from repro.config import PlatformConfig
from repro.mapreduce import LocalJobRunner
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.scheduler import FairScheduler, JobScheduler, PoolConfig
from repro.workloads.mrbench import mrbench_input, mrbench_job, mrbench_sizeof
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

LINES = ["lorem ipsum dolor sit amet", "ipsum dolor sit", "dolor sit"] * 40
RECORDS = lines_as_records(LINES)
SMALL_RECORDS = mrbench_input(n_lines=20)


def run_contended(preemption_timeout=4.0, n_small=2, seed=7):
    """A slot-hogging batch job, then small jobs into a min-share pool."""
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster("pre",
                                         ClusterSpec.spread(8, hosts=2))
    platform.upload(cluster, "/batch/in", RECORDS, sizeof=line_record_sizeof,
                    timed=False)
    platform.upload(cluster, "/small/in", SMALL_RECORDS,
                    sizeof=mrbench_sizeof, timed=False)
    policy = FairScheduler(pools=[
        PoolConfig("interactive", min_share=4,
                   preemption_timeout_s=preemption_timeout),
        PoolConfig("batch"),
    ], preemption_check_s=1.0)
    scheduler = JobScheduler(cluster, policy=policy,
                             runner=platform.runner(cluster))
    batch = wordcount_job("/batch/in", "/batch/out", n_reduces=2)
    batch.name = "hog"
    batch.map_cpu_per_record = 6.0      # long maps: waves outlive the wait
    batch.force_num_maps = 3 * scheduler.total_slots("map")
    events = [scheduler.submit(batch, pool="batch")]
    sim = platform.sim

    def late_arrivals():
        yield sim.timeout(8.0)
        for i in range(n_small):
            job = mrbench_job("/small/in", f"/small/out-{i}", n_maps=4,
                              n_reduces=1)
            job.name = f"small-{i}"
            events.append(scheduler.submit(job, pool="interactive"))

    sim.run_until(sim.process(late_arrivals(), name="arrivals"))
    sim.run_until(sim.all_of(list(events)))
    return platform, scheduler, scheduler.finalize(), batch, events


def test_starved_pool_preempts_and_everyone_still_finishes():
    platform, scheduler, report, batch, events = run_contended()
    assert report.preemptions > 0
    hog = next(j for j in report.jobs if j.job_name == "hog")
    assert hog.preempted_tasks == report.preemptions
    assert report.pool("batch").preemptions_suffered == report.preemptions
    assert report.pool("interactive").preemptions_claimed == \
        report.preemptions
    # Preemption hurt only timing, never output.
    batch_report = events[0].value
    assert platform.collect(platform.clusters["pre"], batch_report) == \
        LocalJobRunner().run(batch, RECORDS)
    expected = dict(collections.Counter(" ".join(LINES).split()))
    assert dict(platform.collect(platform.clusters["pre"],
                                 batch_report)) == expected


def test_only_map_tasks_are_preempted():
    platform, _scheduler, report, _batch, _events = run_contended()
    kills = list(platform.tracer.select("scheduler.preempt"))
    assert kills
    assert all(k.source.startswith("m-") for k in kills)
    reverted = list(platform.tracer.select("task.map.preempted"))
    assert len(reverted) == report.preemptions


def test_victims_never_driven_below_their_floor():
    platform, _scheduler, _report, _batch, _events = run_contended()
    kills = list(platform.tracer.select("scheduler.preempt"))
    by_sweep = collections.defaultdict(list)
    for k in kills:
        by_sweep[(k.time, k["victim_pool"])].append(k)
    for (_time, _pool), sweep in by_sweep.items():
        floor = sweep[0]["victim_floor"]
        running = sweep[0]["victim_running"]
        assert floor >= sweep[0]["victim_min_share"]
        # One sweep never kills into the victim's guaranteed share.
        assert len(sweep) <= running - floor


def test_preemption_speeds_up_the_starved_pool():
    _p1, _s1, with_pre, _b1, _e1 = run_contended(preemption_timeout=4.0)
    _p2, _s2, without, _b2, _e2 = run_contended(preemption_timeout=1e6)
    assert without.preemptions == 0
    mean_with = with_pre.pool("interactive").mean_wait_s
    mean_without = without.pool("interactive").mean_wait_s
    assert mean_with < mean_without


def test_preempted_attempts_do_not_inflate_counters():
    platform, _scheduler, report, _batch, events = run_contended()
    assert report.preemptions > 0
    batch_report = events[0].value
    total_words = sum(
        collections.Counter(" ".join(LINES).split()).values())
    assert batch_report.counters.get("job", "map_input_records") == \
        len(RECORDS)
    assert batch_report.counters.get("job", "map_output_records") == \
        total_words
