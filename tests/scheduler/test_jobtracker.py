"""Integration tests for the multi-job JobScheduler."""

import collections

import pytest

from repro.config import PlatformConfig
from repro.errors import SimulationError
from repro.mapreduce import Job, LocalJobRunner, Mapper
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.scheduler import (CapacityScheduler, FairScheduler, FifoScheduler,
                             JobScheduler, PoolConfig, QueueConfig)
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

LINES = ["alpha beta gamma delta", "beta gamma delta", "gamma delta",
         "delta epsilon"] * 8
RECORDS = lines_as_records(LINES)
EXPECTED = dict(collections.Counter(" ".join(LINES).split()))


def make_cluster(seed=5, n=8, hadoop_config=None):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster(
        "sch", ClusterSpec.spread(n, hosts=2), hadoop_config=hadoop_config)
    platform.upload(cluster, "/in", RECORDS, sizeof=line_record_sizeof,
                    timed=False)
    return platform, cluster


def wc(out, name, n_reduces=2, cpu=0.02):
    job = wordcount_job("/in", out, n_reduces=n_reduces)
    job.name = name
    job.map_cpu_per_record = cpu
    return job


def spans_overlap(a, b):
    return a.start < b.end and b.start < a.end


def test_concurrent_jobs_interleave_with_identical_outputs():
    platform, cluster = make_cluster()
    policy = FairScheduler(pools=[PoolConfig("p1"), PoolConfig("p2")])
    jobs = [wc("/out-a", "job-a"), wc("/out-b", "job-b")]
    jobs[0].force_num_maps = 8
    jobs[1].force_num_maps = 8
    reports, sched = platform.submit_jobs(
        cluster, [(jobs[0], "p1"), (jobs[1], "p2")], policy=policy)

    # Functional outputs are bit-identical to a solo in-process run.
    for job, report in zip(jobs, reports):
        assert platform.collect(cluster, report) == \
            LocalJobRunner().run(job, RECORDS)
        assert dict(platform.collect(cluster, report)) == EXPECTED

    # The jobs really interleaved at slot granularity.
    assert sched.concurrent_busy_s > 0.0
    a_tasks = [t for t in reports[0].tasks]
    b_tasks = [t for t in reports[1].tasks]
    assert any(spans_overlap(ta, tb) for ta in a_tasks for tb in b_tasks)

    # Scheduler accounting is coherent.
    assert sched.n_jobs == 2
    assert sched.makespan > 0
    assert sched.busy_slot_seconds > 0
    assert sched.idle_while_pending_s == 0.0
    assert set(sched.pools) == {"p1", "p2"}
    assert all(p.n_jobs == 1 for p in sched.pools.values())
    assert all(p.slot_seconds > 0 for p in sched.pools.values())


def test_fifo_runs_jobs_in_submission_order():
    platform, cluster = make_cluster(seed=9)
    jobs = [wc(f"/out-{i}", f"job-{i}") for i in range(3)]
    reports, sched = platform.submit_jobs(cluster, jobs,
                                          policy=FifoScheduler())
    assert sched.policy == "fifo"
    firsts = [r.first_task_at for r in reports]
    finishes = [r.finished_at for r in reports]
    assert firsts == sorted(firsts)
    assert finishes == sorted(finishes)


def test_capacity_scheduler_end_to_end():
    platform, cluster = make_cluster(seed=13)
    policy = CapacityScheduler(queues=[QueueConfig("etl", 0.5),
                                       QueueConfig("adhoc", 0.5)])
    jobs = [(wc("/out-a", "etl-job"), "etl"),
            (wc("/out-b", "adhoc-job"), "adhoc")]
    reports, sched = platform.submit_jobs(cluster, jobs, policy=policy)
    assert sched.policy == "capacity"
    for report in reports:
        assert dict(platform.collect(cluster, report)) == EXPECTED
    assert {j.pool for j in sched.jobs} == {"etl", "adhoc"}


def test_default_policy_is_fifo_and_plain_jobs_default_pool():
    platform, cluster = make_cluster(seed=3)
    reports, sched = platform.submit_jobs(cluster, [wc("/out", "solo")])
    assert sched.policy == "fifo"
    assert sched.jobs[0].pool == "default"
    assert dict(platform.collect(cluster, reports[0])) == EXPECTED


def test_map_only_job_through_scheduler():
    platform, cluster = make_cluster(seed=17)
    job = Job(name="identity", input_paths=["/in"], output_path="/id",
              mapper=Mapper, n_reduces=0)
    reports, _sched = platform.submit_jobs(cluster, [job])
    assert sorted(platform.collect(cluster, reports[0])) == sorted(RECORDS)


def test_job_report_scheduler_fields():
    platform, cluster = make_cluster(seed=21)
    reports, sched = platform.submit_jobs(
        cluster, [(wc("/out", "measured"), "analytics")])
    report = reports[0]
    assert report.pool == "analytics"
    assert report.first_task_at is not None
    assert report.wait_s == report.first_task_at - report.submitted_at
    assert report.wait_s >= 0
    assert report.slot_seconds > 0
    stats = sched.jobs[0]
    assert stats.job_name == "measured"
    assert stats.wait_s == pytest.approx(report.wait_s)
    assert stats.slot_seconds == pytest.approx(report.slot_seconds)


def test_finalize_refuses_while_jobs_active():
    platform, cluster = make_cluster(seed=25)
    scheduler = JobScheduler(cluster, runner=platform.runner(cluster))
    scheduler.submit(wc("/out", "inflight"))
    with pytest.raises(SimulationError):
        scheduler.finalize()
    scheduler.run_all()  # completes fine afterwards


def test_backlog_and_total_slots():
    platform, cluster = make_cluster(seed=29)
    scheduler = JobScheduler(cluster, runner=platform.runner(cluster))
    per_tracker = cluster.config.map_tasks_maximum
    assert scheduler.total_slots("map") == \
        per_tracker * len(cluster.trackers)
    assert scheduler.backlog("map") == 0
    job = wc("/out", "backlogged")
    job.force_num_maps = 40
    done = scheduler.submit(job)
    # Drive until the map stage opens, then peek the backlog.
    while scheduler.backlog("map") == 0 and not done.triggered:
        platform.sim.step()
    assert scheduler.backlog("map") > 0
    platform.sim.run_until(done)
    scheduler.finalize()


def test_scheduler_emits_trace_events():
    platform, cluster = make_cluster(seed=33)
    platform.submit_jobs(cluster, [wc("/out", "traced")])
    submit = platform.tracer.last("scheduler.submit")
    assert submit is not None
    assert submit["policy"] == "fifo"
    assert platform.tracer.count("task.map.done") >= 1
