"""Per-pool queue-wait / completion-latency percentiles in the
SchedulerReport, plus the nearest-rank percentile helper itself."""

import pytest

from repro.config import PlatformConfig
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.scheduler import FairScheduler, PoolConfig
from repro.scheduler.report import PoolStats, percentile
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

LINES = ["mu nu xi omicron", "nu xi", "xi omicron"] * 6


def test_percentile_nearest_rank_exactness():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 0.5) == 3.0
    assert percentile(values, 0.99) == 5.0
    assert percentile(values, 1.0) == 5.0
    assert percentile([7.5], 0.5) == 7.5
    assert percentile([], 0.9) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 1.5)


def test_pool_stats_percentiles_from_samples():
    stats = PoolStats(name="p")
    assert stats.wait_p50 == 0.0 and stats.latency_p99 == 0.0
    stats.wait_samples.extend(float(i) for i in range(1, 101))
    stats.latency_samples.extend(float(i) * 10 for i in range(1, 101))
    assert stats.wait_p50 == 50.0
    assert stats.wait_p99 == 99.0
    assert stats.latency_p50 == 500.0
    assert stats.latency_p99 == 990.0


def test_scheduler_report_collects_per_pool_samples():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=17))
    cluster = platform.provision_cluster("sch", ClusterSpec.spread(6, hosts=2))
    platform.upload(cluster, "/in", lines_as_records(LINES),
                    sizeof=line_record_sizeof, timed=False)

    def wc(out, name):
        job = wordcount_job("/in", out, n_reduces=1)
        job.name = name
        return job

    policy = FairScheduler(pools=[PoolConfig("a"), PoolConfig("b")])
    jobs = [(wc("/out-0", "j0"), "a"), (wc("/out-1", "j1"), "a"),
            (wc("/out-2", "j2"), "b")]
    reports, sched = platform.submit_jobs(cluster, jobs, policy=policy)

    # Every finished job contributed exactly one sample to its pool.
    assert len(sched.pool("a").wait_samples) == 2
    assert len(sched.pool("a").latency_samples) == 2
    assert len(sched.pool("b").wait_samples) == 1

    # Pool percentiles are nearest-rank over those samples, and latencies
    # dominate waits (a job cannot finish before it starts).
    for pool in sched.pools.values():
        assert pool.latency_p50 >= pool.wait_p50
        assert pool.latency_p99 >= pool.latency_p50 > 0.0
        assert pool.wait_p99 == percentile(pool.wait_samples, 0.99)

    # Cluster-wide percentiles agree with the raw job stats.
    waits = sorted(j.wait_s for j in sched.jobs)
    assert sched.wait_p99 == waits[-1]
    elapsed = sorted(j.elapsed for j in sched.jobs)
    assert sched.latency_p99 == elapsed[-1]
    assert sched.latency_p50 == elapsed[1]  # rank 2 of 3

    # The per-job elapsed matches the per-pool samples exactly.
    a_lat = sorted(sched.pool("a").latency_samples)
    assert a_lat == sorted(j.elapsed for j in sched.jobs if j.pool == "a")
