"""Unit tests for the HDFS substrate: blocks, namenode, client."""

import pytest

from repro import constants as C
from repro.config import HadoopConfig, PlatformConfig
from repro.errors import (BlockNotFound, FileAlreadyExists, FileNotFoundInDfs,
                          HdfsError, ReplicationError)
from repro.hdfs import Block, BlockStore, DataNode, DfsClient, NameNode
from repro.platform import ClusterSpec, VHadoopPlatform


# --- blocks ---------------------------------------------------------------

def test_block_metadata_validation():
    with pytest.raises(ValueError):
        Block("blk_x", -1, 0)
    with pytest.raises(ValueError):
        Block("blk_x", 10, -1)


def test_block_store_roundtrip():
    store = BlockStore()
    block = Block("blk_1", 100, 3)
    store.put(block, ["a", "b", "c"])
    assert store.get(block) == ("a", "b", "c")
    assert block in store
    store.drop(block)
    assert block not in store
    with pytest.raises(BlockNotFound):
        store.get(block)


# --- cluster fixture ----------------------------------------------------------

@pytest.fixture()
def cluster16():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=5))
    cluster = platform.provision_cluster("t", ClusterSpec.packed(16, hosts=2))
    return platform, cluster


@pytest.fixture()
def small_cluster():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=5))
    cluster = platform.provision_cluster("t", ClusterSpec.single_host(4))
    return platform, cluster


# --- namenode --------------------------------------------------------------

def test_namespace_create_get_delete(small_cluster):
    _platform, cluster = small_cluster
    nn = cluster.namenode
    f = nn.create_file("/a")
    assert nn.get_file("/a") is f
    assert nn.exists("/a")
    with pytest.raises(FileAlreadyExists):
        nn.create_file("/a")
    nn.delete_file("/a")
    assert not nn.exists("/a")
    with pytest.raises(FileNotFoundInDfs):
        nn.get_file("/a")
    with pytest.raises(FileNotFoundInDfs):
        nn.delete_file("/a")


def test_list_files_prefix(small_cluster):
    _platform, cluster = small_cluster
    nn = cluster.namenode
    for path in ("/out/part-0", "/out/part-1", "/other"):
        nn.create_file(path)
    assert nn.list_files("/out/") == ["/out/part-0", "/out/part-1"]


def test_write_targets_first_replica_local(cluster16):
    _platform, cluster = cluster16
    nn = cluster.namenode
    writer = cluster.workers[3]
    targets = nn.choose_write_targets(writer.name, 3)
    assert targets[0].vm is writer
    assert len(targets) == 3
    assert len(set(id(t) for t in targets)) == 3


def test_write_targets_second_replica_off_host(cluster16):
    _platform, cluster = cluster16
    nn = cluster.namenode
    writer = cluster.workers[0]
    for _ in range(10):
        targets = nn.choose_write_targets(writer.name, 2)
        assert targets[1].vm.host is not targets[0].vm.host


def test_write_targets_underreplicates_small_cluster():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=5))
    cluster = platform.provision_cluster("t", ClusterSpec.single_host(2))
    targets = cluster.namenode.choose_write_targets(
        cluster.workers[0].name, 3)
    assert len(targets) == 1  # only one datanode exists


def test_write_targets_validation(small_cluster):
    _platform, cluster = small_cluster
    with pytest.raises(ReplicationError):
        cluster.namenode.choose_write_targets("x", 0)
    empty = NameNode()
    with pytest.raises(ReplicationError):
        empty.choose_write_targets("x", 1)


def test_read_replica_prefers_node_then_host(cluster16):
    platform, cluster = cluster16
    nn = cluster.namenode
    writer = cluster.workers[0]
    event = cluster.dfs.write_file(writer, "/f", [1, 2, 3],
                                   sizeof=lambda _r: 8)
    platform.sim.run()
    block = nn.get_file("/f").blocks[0]
    # The writer itself holds a replica: node-local wins.
    assert nn.choose_read_replica(writer.name, block).vm is writer
    # A reader co-hosted with a holder gets a same-host replica.
    holders = nn.replicas[block.block_id]
    holder_hosts = {dn.vm.host for dn in holders}
    for vm in cluster.workers:
        if vm.host in holder_hosts:
            chosen = nn.choose_read_replica(vm.name, block)
            assert chosen.vm.host is vm.host


def test_read_replica_missing_block(small_cluster):
    _platform, cluster = small_cluster
    with pytest.raises(ReplicationError):
        cluster.namenode.choose_read_replica(
            cluster.workers[0].name, Block("blk_missing", 1, 1))


# --- client ---------------------------------------------------------------------

def test_write_read_roundtrip(small_cluster):
    platform, cluster = small_cluster
    writer, reader = cluster.workers[0], cluster.workers[1]
    records = [(i, f"value-{i}") for i in range(50)]
    event = cluster.dfs.write_file(writer, "/data", records)
    platform.sim.run()
    assert event.value.size > 0
    read = cluster.dfs.read_file(reader, "/data")
    platform.sim.run()
    assert list(read.value) == records


def test_write_packs_blocks_by_size():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=5))
    config = HadoopConfig(dfs_block_size=1 * C.MiB)
    cluster = platform.provision_cluster("t", ClusterSpec.single_host(4),
                                         hadoop_config=config)
    records = list(range(40))
    event = cluster.dfs.write_file(cluster.workers[0], "/packed", records,
                                   sizeof=lambda _r: 100 * C.KiB)
    platform.sim.run()
    f = event.value
    # 40 records x 100 KiB at 1 MiB per block -> 4 blocks of 10 records.
    assert len(f.blocks) == 4
    assert all(b.n_records == 10 for b in f.blocks)
    assert f.n_records == 40


def test_replication_places_copies(small_cluster):
    platform, cluster = small_cluster
    event = cluster.dfs.write_file(cluster.workers[0], "/rep", [1],
                                   sizeof=lambda _r: 1024)
    platform.sim.run()
    block = event.value.blocks[0]
    assert cluster.namenode.replica_count(block) == \
        cluster.config.dfs_replication


def test_write_time_scales_with_bytes(small_cluster):
    platform, cluster = small_cluster
    sim = platform.sim
    t0 = sim.now
    cluster.dfs.write_file(cluster.workers[0], "/small", [1],
                           sizeof=lambda _r: 1 * C.MB)
    sim.run()
    small_time = sim.now - t0
    t0 = sim.now
    cluster.dfs.write_file(cluster.workers[0], "/large", [1],
                           sizeof=lambda _r: 50 * C.MB)
    sim.run()
    large_time = sim.now - t0
    assert large_time > 5 * small_time


def test_node_local_read_cheaper_than_remote(cluster16):
    platform, cluster = cluster16
    sim = platform.sim
    writer = cluster.workers[0]
    event = cluster.dfs.write_file(writer, "/loc", [1],
                                   sizeof=lambda _r: 32 * C.MB,
                                   replication=1)
    sim.run()
    block = event.value.blocks[0]
    t0 = sim.now
    cluster.dfs.read_block(writer, block)
    sim.run()
    local_time = sim.now - t0
    # A worker on the other physical host must cross the netback/NIC.
    remote = next(vm for vm in cluster.workers
                  if vm.host is not writer.host)
    t0 = sim.now
    cluster.dfs.read_block(remote, block)
    sim.run()
    remote_time = sim.now - t0
    assert remote_time > local_time


def test_append_adds_blocks(small_cluster):
    platform, cluster = small_cluster
    cluster.dfs.write_file(cluster.workers[0], "/app", [1],
                           sizeof=lambda _r: 128)
    platform.sim.run()
    cluster.dfs.append_records(cluster.workers[1], "/app", [2, 3],
                               sizeof=lambda _r: 128)
    platform.sim.run()
    assert cluster.dfs.peek_records("/app") == (1, 2, 3)


def test_peek_records_costs_no_time(small_cluster):
    platform, cluster = small_cluster
    cluster.dfs.write_file(cluster.workers[0], "/peek", list(range(10)))
    platform.sim.run()
    before = platform.sim.now
    records = cluster.dfs.peek_records("/peek")
    assert platform.sim.now == before
    assert records == tuple(range(10))


def test_datanode_read_requires_replica(small_cluster):
    _platform, cluster = small_cluster
    dn = cluster.datanodes[0]
    with pytest.raises(HdfsError):
        dn.read_from_disk(Block("blk_nope", 10, 1))


def test_delete_releases_replicas(small_cluster):
    platform, cluster = small_cluster
    event = cluster.dfs.write_file(cluster.workers[0], "/gone", [1, 2])
    platform.sim.run()
    block = event.value.blocks[0]
    holders = list(cluster.namenode.replicas[block.block_id])
    cluster.namenode.delete_file("/gone")
    for dn in holders:
        assert not dn.holds(block)
    assert block not in cluster.namenode.block_store
