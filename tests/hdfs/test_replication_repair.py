"""Repair-sweep edge cases: dead holders mid-sweep and clamped targets.

Regression tests for two failure-path bugs: ``_copy_replica`` used to
read from whatever holder came first — including one whose VM had died
but had not been reaped yet — and a sweep on a shrunken cluster reported
"fully repaired" while silently clamping the replication target to the
surviving datanode count.
"""

from repro.config import HadoopConfig, PlatformConfig
from repro.hdfs.replication import (ReplicationRepairer, mark_datanode_dead,
                                    under_replicated)
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.platform.faults import fail_worker, repair_cluster
from repro.workloads.wordcount import line_record_sizeof, lines_as_records

LINES = ["upsilon phi chi psi omega"] * 40
RECORDS = lines_as_records(LINES)


def make(n=8, seed=17, replication=2):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster(
        "rep", ClusterSpec.single_host(n),
        hadoop_config=HadoopConfig(dfs_replication=replication))
    platform.upload(cluster, "/in", RECORDS, sizeof=line_record_sizeof,
                    timed=False)
    return platform, cluster


def _repairer(platform, cluster):
    return ReplicationRepairer(platform.sim, platform.datacenter.fabric,
                               cluster.namenode)


def test_copy_replica_skips_unreaped_dead_holder():
    """A holder whose VM died but is still listed must not be picked as
    the copy source; the surviving live holder is."""
    platform, cluster = make()
    namenode = cluster.namenode
    block_id, holders = next(
        (bid, h) for bid, h in namenode.replicas.items() if len(h) == 2)
    live, stale = holders
    stale.vm.fail()  # dead, but *not* reaped from the namespace

    # Ask for one more replica than configured so the block needs a copy.
    report_ev = _repairer(platform, cluster).repair(3)
    platform.sim.run_until(report_ev)
    report = report_ev.value

    assert block_id in report.repaired
    new_holders = namenode.replicas[block_id]
    added = [dn for dn in new_holders if dn not in (live, stale)]
    assert len(added) == 1
    # The copy could only have come from the live holder; the new replica
    # is on a live VM.
    assert added[0].blocks.get(block_id) is not None
    assert added[0].vm.state.name == "RUNNING"


def test_block_degrades_to_unrecoverable_without_live_holder():
    platform, cluster = make()
    namenode = cluster.namenode
    block_id, holders = next(
        (bid, h) for bid, h in namenode.replicas.items() if len(h) == 2)
    reaped, stale = holders
    stale.vm.fail()                       # dead but still listed
    mark_datanode_dead(namenode, reaped)  # properly reaped

    report_ev = _repairer(platform, cluster).repair(2)
    platform.sim.run_until(report_ev)
    report = report_ev.value

    assert block_id in report.unrecoverable
    assert not report.fully_replicated


def test_shortfall_reported_when_cluster_smaller_than_replication():
    """Repairing on a cluster with fewer datanodes than the configured
    replication must report the shortfall, not claim full repair."""
    platform, cluster = make(n=5, replication=3)
    # Shrink to 2 datanodes: every block's target clamps to 2 < 3.
    for victim in list(cluster.workers)[:2]:
        fail_worker(cluster, victim)
    assert len(cluster.namenode.datanodes) == 2

    report = repair_cluster(cluster)
    assert report.configured_replication == 3
    assert report.shortfall
    assert all(short == 1 for short in report.shortfall.values())
    assert not report.fully_replicated
    # The clamped target itself is met: nothing is under-replicated
    # relative to the surviving cluster size.
    assert not under_replicated(cluster.namenode, 3)


def test_healthy_repair_is_fully_replicated():
    platform, cluster = make()
    victim_dn = next(dn for dn in cluster.datanodes if dn.blocks)
    fail_worker(cluster, victim_dn.vm)
    report = repair_cluster(cluster)
    assert report.repaired
    assert not report.shortfall
    assert not report.unrecoverable
    assert report.fully_replicated
