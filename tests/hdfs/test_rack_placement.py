"""Rack-aware placement properties (hypothesis) and the one-rack identity.

Three invariants from the rack tier's contract:

* whenever at least two racks have capacity, every write placement with
  ``replication >= 2`` spans at least two racks (Hadoop's default policy);
* a repair sweep after a whole-rack kill restores rack diversity — no
  block is left with all surviving replicas on one rack while another
  rack has room;
* the one-rack degenerate topology (``1x2x8``) reproduces the flat
  two-host seed cluster's job results bit-for-bit — same simulated
  elapsed time, same kernel event count, same fair-share counters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants as C
from repro.config import HadoopConfig, PlatformConfig, TopologySpec
from repro.datasets.text import generate_corpus
from repro.hdfs.replication import ReplicationRepairer, mark_datanode_dead
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

LINES = ["alpha beta gamma delta"] * 30


def racked_platform(spec_str, seed=3, replication=2, upload=False):
    topo = TopologySpec.parse(spec_str)
    platform = VHadoopPlatform(PlatformConfig(topology=topo, seed=seed))
    cluster = platform.provision_cluster(
        "rp", ClusterSpec.racked(topo),
        hadoop_config=HadoopConfig(dfs_replication=replication))
    if upload:
        platform.upload(cluster, "/in", lines_as_records(LINES),
                        sizeof=scaled_line_sizeof(1), timed=False)
    return platform, cluster


def rack_of(namenode, dn):
    return namenode._rack_of(dn)


def racks_of(namenode, datanodes):
    return {rack_of(namenode, dn) for dn in datanodes}


# -- property: >=2 racks per placement ---------------------------------------

@settings(max_examples=25, deadline=None)
@given(racks=st.integers(2, 4), hosts_per_rack=st.integers(1, 2),
       vms_per_host=st.integers(1, 2), replication=st.integers(2, 3),
       writer=st.integers(0, 100), data=st.data())
def test_write_targets_span_two_racks(racks, hosts_per_rack, vms_per_host,
                                      replication, writer, data):
    """Any write with replication >= 2 on a multi-rack pool lands replicas
    on at least two distinct racks (and never two copies on one node)."""
    spec = f"{racks}x{hosts_per_rack}x{vms_per_host}"
    _platform, cluster = racked_platform(spec)
    nn = cluster.namenode
    writer_vm = cluster.vms[writer % len(cluster.vms)].name
    for _ in range(data.draw(st.integers(1, 3))):
        targets = nn.choose_write_targets(writer_vm, replication)
        assert len(targets) == min(replication, len(nn.datanodes))
        assert len(set(targets)) == len(targets)
        if len(targets) >= 2:
            assert len(racks_of(nn, targets)) >= 2


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50))
def test_uploaded_blocks_span_two_racks(seed):
    """End to end: every block written by a real upload is rack-diverse."""
    _platform, cluster = racked_platform("3x2x1", seed=seed, upload=True)
    nn = cluster.namenode
    assert nn.replicas
    for holders in nn.replicas.values():
        assert len(holders) == 2
        assert len(racks_of(nn, holders)) == 2


def test_single_rack_degrades_to_off_host():
    """With one rack the policy falls back to the flat off-host rule."""
    _platform, cluster = racked_platform("1x2x2")
    nn = cluster.namenode
    targets = nn.choose_write_targets(cluster.vms[0].name, 2)
    assert len({dn.vm.host for dn in targets}) == 2


# -- property: repair restores rack diversity --------------------------------

@settings(max_examples=6, deadline=None)
@given(victim_rack=st.integers(0, 2), seed=st.integers(0, 20))
def test_repair_restores_rack_diversity_after_rack_kill(victim_rack, seed):
    """Kill every datanode on one rack; after the sweep every block is
    back at full replication with holders spanning >= 2 racks, none on
    the dead rack."""
    platform, cluster = racked_platform("3x2x2", seed=seed, replication=3,
                                        upload=True)
    nn = cluster.namenode
    rack_name = f"rack{victim_rack}"
    victims = [dn for dn in list(nn.datanodes)
               if dn.vm.host.rack_name == rack_name]
    assert victims
    for dn in victims:
        dn.vm.fail()
        mark_datanode_dead(nn, dn)

    repairer = ReplicationRepairer(platform.sim, platform.datacenter.fabric,
                                   nn)
    done = repairer.repair(3)
    platform.sim.run_until(done)
    report = done.value

    assert report.fully_replicated
    for holders in nn.replicas.values():
        assert len(holders) == 3
        holder_racks = {dn.vm.host.rack_name for dn in holders}
        assert rack_name not in holder_racks
        assert len(holder_racks) >= 2


# -- one-rack degenerate == flat seed, bit for bit ---------------------------

def _wordcount_fingerprint(platform, cluster):
    lines = generate_corpus(
        2 * C.MB, rng=platform.datacenter.rng.fresh("datasets/corpus"))
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(50), timed=False)
    job = wordcount_job("/in", "/out", n_reduces=4, volume_scale=50)
    report = platform.run_job(cluster, job)
    sim, fss = platform.sim, platform.datacenter.fss
    return {
        "elapsed": repr(report.elapsed),
        "events_processed": sim.events_processed,
        "rebalance_count": fss.rebalance_count,
        "flow_visits": fss.flow_visits,
        "completed_flows": fss.completed_count,
    }


def test_one_rack_topology_is_bit_identical_to_flat_seed():
    """``topology=1x2x8`` with tor=None racks must replay the flat
    two-host seed cluster exactly: same RNG draws, same paths, same
    simulated timeline, same kernel/fair-share counters."""
    flat = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=7))
    flat_cluster = flat.provision_cluster(
        "hvc", ClusterSpec.packed(16, hosts=2))

    topo = TopologySpec.parse("1x2x8")
    racked = VHadoopPlatform(PlatformConfig(topology=topo, seed=7))
    racked_c = racked.provision_cluster(
        "hvc", ClusterSpec.racked(topo, label="cross-domain"))

    assert [vm.host.name for vm in flat_cluster.vms] \
        == [vm.host.name for vm in racked_c.vms]
    assert _wordcount_fingerprint(flat, flat_cluster) \
        == _wordcount_fingerprint(racked, racked_c)
