"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, Interrupt


def test_empty_run_leaves_clock_at_zero():
    sim = Simulator()
    sim.run()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=0.5)


def test_process_returns_value():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(2.0)
        return 42

    proc = sim.process(body(sim))
    sim.run()
    assert proc.value == 42
    assert sim.now == 2.0


def test_process_sequencing_and_values():
    sim = Simulator()
    seen = []

    def body(sim):
        got = yield sim.timeout(1.0, value="a")
        seen.append((sim.now, got))
        got = yield sim.timeout(2.0, value="b")
        seen.append((sim.now, got))

    sim.process(body(sim))
    sim.run()
    assert seen == [(1.0, "a"), (3.0, "b")]


def test_processes_wait_on_each_other():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3.0)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        return result + "!"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "child-result!"


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []

    def make(tag):
        def body(sim):
            yield sim.timeout(1.0)
            order.append(tag)
        return body

    for tag in range(5):
        sim.process(make(tag)(sim))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    results = []

    def waiter(sim):
        value = yield gate
        results.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(7.0)
        gate.succeed("open")

    sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert results == [(7.0, "open")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_failed_event_throws_into_waiter():
    sim = Simulator()
    boom = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield boom
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    boom.fail(ValueError("kaput"))
    sim.run()
    assert caught == ["kaput"]


def test_unwaited_failed_event_raises_out_of_run():
    sim = Simulator()
    sim.event().fail(RuntimeError("unseen"))
    with pytest.raises(RuntimeError, match="unseen"):
        sim.run()


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not-an-exception")  # type: ignore[arg-type]


def test_process_failure_propagates_to_waiter():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise KeyError("inner")

    def outer(sim):
        try:
            yield sim.process(bad(sim))
        except KeyError:
            return "caught"

    p = sim.process(outer(sim))
    sim.run()
    assert p.value == "caught"


def test_yield_on_already_processed_event():
    sim = Simulator()
    early = sim.timeout(1.0, value="early")

    def late(sim):
        yield sim.timeout(5.0)
        value = yield early
        return value

    p = sim.process(late(sim))
    sim.run()
    assert p.value == "early"
    assert sim.now == 5.0


def test_yield_non_event_raises_in_process():
    sim = Simulator()

    def bad(sim):
        yield "not an event"

    def outer(sim):
        try:
            yield sim.process(bad(sim))
        except SimulationError:
            return "typed"

    p = sim.process(outer(sim))
    sim.run()
    assert p.value == "typed"


def test_interrupt_waiting_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append((sim.now, i.cause))
            yield sim.timeout(1.0)
        return "recovered"

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt("wake-up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [(2.0, "wake-up")]
    assert victim.triggered and victim.value == "recovered"
    # The abandoned 100 s timeout still sat in the queue (SimPy semantics);
    # draining it moved the clock to 100 but resumed nobody.
    assert sim.now == 100.0


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_any_of_triggers_on_first():
    sim = Simulator()
    a = sim.timeout(1.0, "a")
    b = sim.timeout(5.0, "b")

    def body(sim):
        result = yield sim.any_of([a, b])
        return result

    p = sim.process(body(sim))
    sim.run(until=2.0)
    assert p.triggered
    assert p.value == {a: "a"}


def test_all_of_waits_for_all():
    sim = Simulator()
    a = sim.timeout(1.0, "a")
    b = sim.timeout(5.0, "b")

    def body(sim):
        result = yield sim.all_of([a, b])
        return sorted(result.values())

    p = sim.process(body(sim))
    sim.run()
    assert sim.now == 5.0
    assert p.value == ["a", "b"]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    cond = sim.all_of([])
    sim.run()
    assert cond.triggered and cond.value == {}


def test_process_body_must_be_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_clock_is_monotone_across_many_events():
    sim = Simulator()
    stamps = []

    def body(sim, delay):
        yield sim.timeout(delay)
        stamps.append(sim.now)

    for d in (3.0, 1.0, 2.0, 1.0, 0.0):
        sim.process(body(sim, d))
    sim.run()
    assert stamps == sorted(stamps)
    assert sim.now == 3.0


# --- stale wake-ups around interrupt() -------------------------------------

def test_interrupt_beats_stale_immediate_resume():
    """An interrupt must suppress the re-resume scheduled for a process
    that yielded an already-processed event (the wake-up is stale)."""
    sim = Simulator()
    log = []
    ready = sim.event()
    ready.succeed("early")
    sim.run()  # ready is now processed

    def body():
        try:
            yield ready  # already processed: immediate re-resume pending
            log.append("resumed")
        except Interrupt:
            log.append("interrupted")

    proc = sim.process(body())

    def killer():
        # Runs in the same timestep, after ``proc`` booted and parked
        # behind the immediate re-resume.
        proc.interrupt("stop")
        return
        yield  # pragma: no cover

    sim.process(killer())
    sim.run()
    assert log == ["interrupted"]
    assert not proc.is_alive


def test_interrupt_from_sibling_callback_suppresses_resume():
    """Interrupting from another callback of the *same* event must win,
    even though step() already detached the event's callback list."""
    sim = Simulator()
    log = []
    gate = sim.event()
    holder = {}

    def sibling(_ev):
        holder["proc"].interrupt("beaten to it")

    gate.callbacks.append(sibling)

    def body():
        try:
            yield gate
            log.append("resumed")
        except Interrupt:
            log.append("interrupted")

    holder["proc"] = sim.process(body())
    sim.run()  # boot: proc is now waiting on gate, behind ``sibling``
    gate.succeed(None)
    sim.run()
    assert log == ["interrupted"]


def test_interrupt_before_first_resume_cancels_quietly():
    """A process interrupted before its body ever ran cannot catch the
    Interrupt — the kernel treats it as a cancellation instead."""
    sim = Simulator()
    started = []

    def body():
        started.append(True)
        yield sim.timeout(1.0)

    proc = sim.process(body())
    proc.interrupt("never mind")  # before the bootstrap event fires
    sim.run()
    assert not started
    assert not proc.is_alive
    assert proc.value is None


def test_second_interrupt_after_body_finished_is_dropped():
    """Two interrupts in one timestep: the first may finish the body, so
    the second lands on a finished process and must be dropped, not
    refail it."""
    sim = Simulator()
    log = []

    def body():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            log.append("interrupted")

    proc = sim.process(body())

    def killer():
        yield sim.timeout(1.0)
        proc.interrupt("one")
        proc.interrupt("two")  # body returns before this one lands

    sim.process(killer())
    sim.run()
    assert log == ["interrupted"]
    assert not proc.is_alive
