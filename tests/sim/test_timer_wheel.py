"""Kernel flattening: TimerWheel coalescing, wake slab, vec advancement."""

import pytest

from repro.sim import FairShareSystem, SharedResource, Simulator
from repro.sim import fairshare as fairshare_mod


@pytest.fixture()
def sim():
    return Simulator()


# -- TimerWheel --------------------------------------------------------------

def test_same_instant_same_deadline_sleeps_share_one_timeout(sim):
    wheel = sim.timer_wheel()
    timers = [wheel.sleep(5.0) for _ in range(10)]
    assert all(t is timers[0] for t in timers)
    assert wheel.armed == 1
    assert wheel.coalesced == 9


def test_distinct_deadlines_are_not_coalesced(sim):
    wheel = sim.timer_wheel()
    a = wheel.sleep(5.0)
    b = wheel.sleep(6.0)
    assert a is not b
    assert wheel.armed == 2
    assert wheel.coalesced == 0


def test_distinct_instants_are_not_coalesced(sim):
    wheel = sim.timer_wheel()
    seen = []

    def sleeper(delay):
        seen.append(wheel.sleep(delay))
        yield seen[-1]

    sim.process(sleeper(5.0))

    def later(sim_):
        yield sim_.timeout(1.0)
        sim_.process(sleeper(4.0))  # same *deadline* (t=5), later instant

    sim.process(later(sim))
    sim.run()
    assert seen[0] is not seen[1]
    assert wheel.armed == 2


def test_wheel_wakes_waiters_in_arming_order(sim):
    wheel = sim.timer_wheel()
    order = []

    def sleeper(tag):
        yield wheel.sleep(3.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(sleeper(tag))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_fired_slot_rearms_a_fresh_timeout(sim):
    """After the shared timer fires its slot is retired; a later sleep at
    the same (instant, deadline) key gets a brand-new Timeout."""
    wheel = sim.timer_wheel()
    first = wheel.sleep(2.0)
    sim.run()
    assert sim.now == 2.0

    def resleep(sim_):
        yield sim_.timeout(0.0)

    sim.process(resleep(sim))
    sim.run()
    again = wheel.sleep(2.0)  # armed at t=2 for t=4
    assert again is not first
    assert wheel.armed == 2


def test_per_subsystem_wheels_never_share_slots(sim):
    w1 = sim.timer_wheel()
    w2 = sim.timer_wheel()
    assert w1.sleep(5.0) is not w2.sleep(5.0)


# -- wake slab ---------------------------------------------------------------

def test_wake_events_recycled_through_slab(sim):
    def noop(sim_):
        yield sim_.timeout(1.0)

    def spawner(sim_):
        for _ in range(20):
            sim_.process(noop(sim_))
            yield sim_.timeout(1.0)

    sim.process(spawner(sim))
    sim.run()
    # Bootstraps after the first recycle their wake events off the slab.
    assert sim.wake_events_reused > 0
    assert len(sim._wake_pool) <= sim._WAKE_POOL_MAX


# -- vectorized advancement --------------------------------------------------

def _run_staggered_transfers(sim, n_flows=80):
    """Many same-link flows of staggered sizes: every completion forces a
    real dt>0 advancement over the surviving flows."""
    fss = FairShareSystem(sim)
    link = SharedResource("link", 1e6)
    flows = [fss.open([link], size=1000.0 * (i + 1)) for i in range(n_flows)]
    sim.run()
    return fss, flows


def test_vec_and_scalar_advancement_are_bit_identical(monkeypatch):
    if fairshare_mod._np is None:
        pytest.skip("NumPy not available")
    monkeypatch.setattr(fairshare_mod, "_VEC_MIN_FLOWS", 1)
    fss_vec, vec_flows = _run_staggered_transfers(Simulator())
    monkeypatch.setattr(fairshare_mod, "_np", None)
    fss_sca, sca_flows = _run_staggered_transfers(Simulator())

    assert [repr(f.end_time) for f in vec_flows] \
        == [repr(f.end_time) for f in sca_flows]
    assert fss_vec.rebalance_count == fss_sca.rebalance_count
    assert fss_vec.flow_visits == fss_sca.flow_visits
    assert fss_vec.completed_count == fss_sca.completed_count == 80
