"""Per-rack component sharding and the incidence-indexed fill.

Three claims guard this optimization layer:

* **maintained incidence is exact** — every component's ``nlive``
  (per-resource live-flow counts over deduped paths) and ``capped`` set
  always equal a from-scratch recount, through opens, closes, merges and
  splits;
* **indexed fills change nothing** — :func:`_maxmin_rates_scoped` fed
  the maintained indices returns bit-identical rates to both its own
  legacy scan path and the :func:`_maxmin_rates` oracle;
* **rack splits are invisible** — the shear split only re-partitions
  unions along true-connectivity lines, so every simulated output is
  bit-identical with ``rack_sharding`` on, off, or fully global, and a
  flat (untagged) topology never splits at all.

``_RACK_MIN_FLOWS`` is lowered inside the property tests so small
generated graphs actually reach the shear-split code path.
"""

import math

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.sim import FairShareSystem, SharedResource, Simulator
from repro.sim import fairshare as fairshare_mod
from repro.sim.fairshare import _maxmin_rates, _maxmin_rates_scoped

_SLOW = dict(deadline=None,
             suppress_health_check=[HealthCheck.too_slow])

_CAPACITIES = (50.0, 100.0, 200.0, 400.0)
_SIZES = (10.0, 100.0, 1000.0, math.inf)
_CAPS = (None, 25.0, 60.0)
_DTS = (0.25, 0.5, 1.0, 2.0)

_ops = st.lists(
    st.tuples(st.sampled_from(["open", "close", "setcap", "advance"]),
              st.integers(0, 2 ** 30), st.integers(0, 2 ** 30)),
    min_size=1, max_size=30)


def _build(n_res, cap_picks, rack_tags=True, **fss_kwargs):
    sim = Simulator()
    fss = FairShareSystem(sim, **fss_kwargs)
    resources = []
    for i in range(n_res):
        res = SharedResource(
            f"r{i}",
            _CAPACITIES[cap_picks[i % len(cap_picks)] % len(_CAPACITIES)])
        if rack_tags:
            res.rack = f"rack{i % 2}"
        resources.append(res)
    return sim, fss, resources


def _apply(sim, fss, resources, ops):
    """Interpret an op sequence; yields after every mutation."""
    flows = []
    n_res = len(resources)
    for op, a, b in ops:
        if op == "open":
            first = a % n_res
            path = [resources[first]]
            if b % 3:  # 1-3 distinct resources (often cross-rack)
                path.append(resources[(first + 1 + a % (n_res - 1)) % n_res])
            if b % 3 == 2 and n_res > 2:
                extra = resources[(first + 2) % n_res]
                if extra not in path:
                    path.append(extra)
            flows.append(fss.open(path, size=_SIZES[a % len(_SIZES)],
                                  cap=_CAPS[b % len(_CAPS)],
                                  name=f"f{len(flows)}"))
        elif op == "close":
            if flows:
                flow = flows[a % len(flows)]
                if flow.active:
                    fss.close(flow)
        elif op == "setcap":
            fss.set_capacity(resources[a % n_res],
                             _CAPACITIES[b % len(_CAPACITIES)])
        else:
            sim.run(until=sim.now + _DTS[a % len(_DTS)])
        yield flows


def _components(fss):
    return list({id(f._comp): f._comp for f in fss._flows}.values())


class _low_rack_threshold:
    """Temporarily lower ``_RACK_MIN_FLOWS`` so small graphs shear-split."""

    def __init__(self, value=4):
        self.value = value

    def __enter__(self):
        self._saved = fairshare_mod._RACK_MIN_FLOWS
        fairshare_mod._RACK_MIN_FLOWS = self.value

    def __exit__(self, *exc):
        fairshare_mod._RACK_MIN_FLOWS = self._saved


# -- maintained incidence ------------------------------------------------------

@given(n_res=st.integers(2, 6),
       cap_picks=st.lists(st.integers(0, 3), min_size=6, max_size=6),
       ops=_ops)
@settings(max_examples=50, **_SLOW)
def test_maintained_incidence_matches_recount(n_res, cap_picks, ops):
    """``nlive``/``capped`` survive attach, detach, merge and both splits."""
    with _low_rack_threshold():
        sim, fss, resources = _build(n_res, cap_picks)
        for _flows in _apply(sim, fss, resources, ops):
            for comp in _components(fss):
                nlive = {}
                capped = set()
                for f in comp.flows:
                    for res in f._upath:
                        nlive[res] = nlive.get(res, 0) + 1
                    if math.isfinite(f.cap):
                        capped.add(f)
                assert comp.nlive == nlive
                assert comp.capped == capped


@given(n_res=st.integers(2, 6),
       cap_picks=st.lists(st.integers(0, 3), min_size=6, max_size=6),
       ops=_ops)
@settings(max_examples=50, **_SLOW)
def test_indexed_fill_matches_legacy_scan_and_oracle(n_res, cap_picks, ops):
    """Same rates from the indexed init, the scan init, and the oracle."""
    with _low_rack_threshold():
        sim, fss, resources = _build(n_res, cap_picks)
        for _flows in _apply(sim, fss, resources, ops):
            for comp in _components(fss):
                indexed, _, _ = _maxmin_rates_scoped(comp.flows, comp.nlive,
                                                     comp.capped)
                scanned, _, _ = _maxmin_rates_scoped(set(comp.flows))
                oracle = _maxmin_rates(comp.flows)
                assert indexed == scanned == oracle


# -- rack shear split ----------------------------------------------------------

def _open_rack_pure(fss, res, count, size=1000.0):
    return [fss.open([res], size=size, name=f"{res.name}-{i}")
            for i in range(count)]


def test_shear_split_fires_on_an_unglued_two_rack_union():
    sim = Simulator()
    fss = FairShareSystem(sim)
    res_a, res_b = SharedResource("a", 100.0), SharedResource("b", 200.0)
    res_a.rack, res_b.rack = "rackA", "rackB"
    flows_a = _open_rack_pure(fss, res_a, 16)
    flows_b = _open_rack_pure(fss, res_b, 16)
    bridge = fss.open([res_a, res_b], size=math.inf, name="bridge")
    assert flows_a[0]._comp is flows_b[0]._comp  # one union
    fss.close(bridge)  # close triggers a rebalance over the stale union
    assert fss.rack_splits == 1
    assert flows_a[0]._comp is not flows_b[0]._comp
    oracle = _maxmin_rates(fss._flows)
    for flow in fss._flows:
        assert flow.rate == oracle[flow]


def test_glued_rack_is_not_sheared():
    """A live cross-rack flow keeps both racks in the blob (NFS-star case)."""
    sim = Simulator()
    fss = FairShareSystem(sim)
    res_a, res_b = SharedResource("a", 100.0), SharedResource("b", 200.0)
    res_a.rack, res_b.rack = "rackA", "rackB"
    _open_rack_pure(fss, res_a, 16)
    _open_rack_pure(fss, res_b, 16)
    bridge = fss.open([res_a, res_b], size=math.inf, name="bridge")
    fss.open([res_a], size=1000.0, name="trigger")  # rebalance the union
    assert fss.rack_splits == 0
    assert bridge._comp is next(iter(res_b._flows))._comp
    oracle = _maxmin_rates(fss._flows)
    for flow in fss._flows:
        assert flow.rate == oracle[flow]


def test_conflicting_rack_claims_fall_back_to_exact_split():
    """Two pure flows of different racks over one resource (stale tags
    after migration retagging): the shortcut must yield to the BFS."""
    sim = Simulator()
    fss = FairShareSystem(sim)
    shared = SharedResource("s", 100.0)
    res_a, res_b = SharedResource("a", 100.0), SharedResource("b", 200.0)
    shared.rack = res_a.rack = "rackA"
    res_b.rack = "rackB"
    _open_rack_pure(fss, res_a, 8)
    _open_rack_pure(fss, res_b, 8)
    fss.open([res_a, shared], size=1000.0, name="claimA")
    shared.rack = "rackB"  # retag, as VM migration does
    fss.open([res_b, shared], size=1000.0, name="claimB")
    with _low_rack_threshold():
        fss.open([shared], size=1000.0, name="trigger")
    assert fss.rack_splits == 0  # conflict detected, exact split used
    oracle = _maxmin_rates(fss._flows)
    for flow in fss._flows:
        assert flow.rate == oracle[flow]


def test_flat_topology_never_rack_splits():
    sim = Simulator()
    fss = FairShareSystem(sim)
    resources = [SharedResource(f"r{i}", 100.0) for i in range(3)]
    flows = []
    for i in range(40):
        flows.append(fss.open([resources[i % 3]], size=100.0, name=f"f{i}"))
    for flow in flows[::2]:
        fss.close(flow)
    sim.run(until=5.0)
    assert fss.rack_splits == 0


def test_rack_sharding_off_never_rack_splits():
    sim = Simulator()
    fss = FairShareSystem(sim, rack_sharding=False)
    res_a, res_b = SharedResource("a", 100.0), SharedResource("b", 200.0)
    res_a.rack, res_b.rack = "rackA", "rackB"
    _open_rack_pure(fss, res_a, 16)
    _open_rack_pure(fss, res_b, 16)
    bridge = fss.open([res_a, res_b], size=math.inf, name="bridge")
    fss.close(bridge)
    assert fss.rack_splits == 0
    oracle = _maxmin_rates(fss._flows)
    for flow in fss._flows:
        assert flow.rate == oracle[flow]


# -- end-to-end bit-identity ---------------------------------------------------

@given(n_res=st.integers(2, 6),
       cap_picks=st.lists(st.integers(0, 3), min_size=6, max_size=6),
       ops=_ops)
@settings(max_examples=50, **_SLOW)
def test_racked_run_is_bit_identical_across_sharding_modes(n_res, cap_picks,
                                                           ops):
    """rack_sharding on / off / global_rebalance: same timestamps,
    transferred amounts and busy integrals, byte for byte."""
    results = []
    with _low_rack_threshold():
        for kwargs in ({"rack_sharding": True}, {"rack_sharding": False},
                       {"global_rebalance": True}):
            sim, fss, resources = _build(n_res, cap_picks, **kwargs)
            flows = []
            for flows in _apply(sim, fss, resources, ops):
                pass
            sim.run(until=sim.now + 120.0)
            results.append((
                [(f.name, f.end_time, f.transferred, f.remaining)
                 for f in flows],
                [res.busy_time(sim.now) for res in resources],
                fss.completed_count,
                sim.now,
            ))
    assert results[0] == results[1] == results[2]
