"""Unit tests for Resource/Store, RngRegistry and Tracer."""

import pytest

from repro.errors import ResourceError
from repro.sim import Resource, RngRegistry, Simulator, Store, Tracer


# --- Resource ----------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    a = res.acquire()
    b = res.acquire()
    c = res.acquire()
    assert a.triggered and b.triggered and not c.triggered
    assert res.available == 0
    assert res.queue_length == 1


def test_resource_fifo_granting():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, tag, hold):
        yield res.acquire()
        order.append(("start", tag, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(worker(sim, "a", 2.0))
    sim.process(worker(sim, "b", 1.0))
    sim.process(worker(sim, "c", 1.0))
    sim.run()
    assert order == [("start", "a", 0.0), ("start", "b", 2.0),
                     ("start", "c", 3.0)]


def test_resource_release_idle_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(ResourceError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ResourceError):
        Resource(sim, capacity=0)


def test_resource_handoff_keeps_in_use_constant():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.acquire()
    waiter = res.acquire()
    assert not waiter.triggered
    res.release()
    assert waiter.triggered
    assert res.in_use == 1


# --- Store --------------------------------------------------------------------

def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = store.get()
    assert got.triggered and got.value == "x"
    assert len(store) == 0


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    results = []

    def consumer(sim):
        item = yield store.get()
        results.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(4.0)
        store.put("late")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert results == [(4.0, "late")]


def test_store_fifo_order_and_try_get():
    sim = Simulator()
    store = Store(sim)
    for i in range(3):
        store.put(i)
    assert store.try_get() == 0
    assert store.try_get() == 1
    assert store.try_get() == 2
    assert store.try_get() is None


# --- RngRegistry ---------------------------------------------------------------

def test_rng_same_seed_same_stream_reproducible():
    a = RngRegistry(seed=7).stream("x").random(5)
    b = RngRegistry(seed=7).stream("x").random(5)
    assert (a == b).all()


def test_rng_different_names_independent():
    reg = RngRegistry(seed=7)
    a = reg.stream("x").random(5)
    b = reg.stream("y").random(5)
    assert not (a == b).all()


def test_rng_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(5)
    b = RngRegistry(seed=2).stream("x").random(5)
    assert not (a == b).all()


def test_rng_stream_is_cached_and_continues():
    reg = RngRegistry(seed=0)
    first = reg.stream("s").random(3)
    second = reg.stream("s").random(3)
    # A fresh registry drawing 6 gives first+second concatenated.
    combined = RngRegistry(seed=0).stream("s").random(6)
    assert (combined[:3] == first).all()
    assert (combined[3:] == second).all()


def test_rng_fresh_restarts():
    reg = RngRegistry(seed=0)
    first = reg.stream("s").random(3)
    restarted = reg.fresh("s").random(3)
    assert (first == restarted).all()
    assert "s" in reg


# --- Tracer --------------------------------------------------------------------

def test_tracer_records_and_selects():
    tr = Tracer()
    tr.emit(1.0, "vm.boot", "vm-0", host="pm-0")
    tr.emit(2.0, "vm.shutdown", "vm-0")
    tr.emit(3.0, "task.map.start", "task-1")
    assert tr.count("vm.") == 2
    assert tr.last("vm.").kind == "vm.shutdown"
    boot = next(tr.select("vm.boot"))
    assert boot["host"] == "pm-0"
    assert boot.time == 1.0


def test_tracer_disabled_records_nothing():
    tr = Tracer(enabled=False)
    tr.emit(1.0, "x", "y")
    assert tr.events == []


def test_tracer_subscription_filtering():
    tr = Tracer()
    seen = []
    tr.subscribe(lambda e: seen.append(e.kind), prefix="net.")
    tr.emit(0.0, "net.flow.start", "s")
    tr.emit(0.0, "vm.boot", "s")
    tr.emit(0.0, "net.flow.end", "s")
    assert seen == ["net.flow.start", "net.flow.end"]


def test_tracer_subscribers_fire_even_when_disabled():
    tr = Tracer(enabled=False)
    seen = []
    tr.subscribe(lambda e: seen.append(e.kind))
    tr.emit(0.0, "anything", "s")
    assert seen == ["anything"]
    assert tr.events == []


def test_tracer_clear():
    tr = Tracer()
    tr.emit(0.0, "a", "s")
    tr.clear()
    assert tr.events == []
