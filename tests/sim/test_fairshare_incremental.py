"""Properties of the incremental connected-component fair-share engine.

Two invariants protect the optimization:

* **allocation exactness** — after any open/close/set_capacity/advance
  sequence, every active flow's rate equals what the reference global
  progressive fill (:func:`repro.sim.fairshare._maxmin_rates`, the
  pre-incremental oracle) computes over the whole flow graph;
* **determinism** — a full run produces bit-identical completion
  timestamps, ``transferred`` amounts, and ``busy_time`` integrals whether
  rebalances are component-scoped (the default) or whole-graph
  (``global_rebalance=True``, the reference mode).

Capacities, sizes, and caps are drawn from discrete pools on purpose: the
exactness claim excludes adversarial *sub-epsilon* cross-component ties
(saturation levels unequal but within 1e-12 of each other), which cannot
arise from exact discrete inputs.
"""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sim import FairShareSystem, SharedResource, Simulator
from repro.sim.fairshare import _maxmin_rates
from repro.telemetry.metrics import MetricsRegistry

_SLOW = dict(deadline=None,
             suppress_health_check=[HealthCheck.too_slow])

_CAPACITIES = (50.0, 100.0, 200.0, 400.0)
_SIZES = (10.0, 100.0, 1000.0, math.inf)
_CAPS = (None, 25.0, 60.0)
_DTS = (0.25, 0.5, 1.0, 2.0)

#: (op, selector a, selector b) — interpreted against the live state, so
#: every generated sequence is valid by construction.
_ops = st.lists(
    st.tuples(st.sampled_from(["open", "close", "setcap", "advance"]),
              st.integers(0, 2 ** 30), st.integers(0, 2 ** 30)),
    min_size=1, max_size=30)


def _build(n_res, cap_picks, global_rebalance=False, metrics=None):
    sim = Simulator()
    fss = FairShareSystem(sim, metrics=metrics,
                          global_rebalance=global_rebalance)
    resources = [
        SharedResource(f"r{i}", _CAPACITIES[cap_picks[i % len(cap_picks)]
                                            % len(_CAPACITIES)])
        for i in range(n_res)]
    return sim, fss, resources


def _apply(sim, fss, resources, ops):
    """Interpret an op sequence; returns every flow ever opened."""
    flows = []
    n_res = len(resources)
    for op, a, b in ops:
        if op == "open":
            first = a % n_res
            path = [resources[first]]
            if b % 3:  # 1-3 distinct resources
                path.append(resources[(first + 1 + a % (n_res - 1)) % n_res])
            if b % 3 == 2 and n_res > 2:
                extra = resources[(first + 2) % n_res]
                if extra not in path:
                    path.append(extra)
            flows.append(fss.open(path, size=_SIZES[a % len(_SIZES)],
                                  cap=_CAPS[b % len(_CAPS)],
                                  name=f"f{len(flows)}"))
        elif op == "close":
            if flows:
                flow = flows[a % len(flows)]
                if flow.active:
                    fss.close(flow)
        elif op == "setcap":
            fss.set_capacity(resources[a % n_res],
                             _CAPACITIES[b % len(_CAPACITIES)])
        else:  # advance simulated time, letting completions fire
            sim.run(until=sim.now + _DTS[a % len(_DTS)])
        yield flows


@given(n_res=st.integers(2, 6),
       cap_picks=st.lists(st.integers(0, 3), min_size=6, max_size=6),
       ops=_ops)
@settings(max_examples=60, **_SLOW)
def test_incremental_rates_match_global_oracle(n_res, cap_picks, ops):
    """After every mutation, scoped rates == whole-graph oracle rates."""
    sim, fss, resources = _build(n_res, cap_picks)
    for _flows in _apply(sim, fss, resources, ops):
        oracle = _maxmin_rates(fss._flows)
        for flow in fss._flows:
            assert flow.rate == oracle[flow], (
                f"{flow.name}: engine {flow.rate!r} != oracle "
                f"{oracle[flow]!r} at t={sim.now}")


@given(n_res=st.integers(2, 6),
       cap_picks=st.lists(st.integers(0, 3), min_size=6, max_size=6),
       ops=_ops)
@settings(max_examples=60, **_SLOW)
def test_incremental_run_is_bit_identical_to_global(n_res, cap_picks, ops):
    """Timestamps, transferred, and busy_time are independent of scoping."""
    results = []
    for global_rebalance in (False, True):
        sim, fss, resources = _build(n_res, cap_picks,
                                     global_rebalance=global_rebalance)
        flows = []
        for flows in _apply(sim, fss, resources, ops):
            pass
        sim.run(until=sim.now + 120.0)  # drain finite flows
        results.append((
            [(f.name, f.end_time, f.transferred, f.remaining)
             for f in flows],
            [res.busy_time(sim.now) for res in resources],
            fss.completed_count,
            sim.now,
        ))
    assert results[0] == results[1]


def test_busy_time_history_survives_capacity_change():
    """Regression: set_capacity must not rescale already-integrated load.

    50 u/s on a 100 u/s resource for 10 s is 5.0 fraction-seconds; halving
    the capacity afterwards must leave those 5.0 untouched (the old code
    divided the whole absolute integral by the *current* capacity,
    retroactively doubling history to 10.0).
    """
    sim = Simulator()
    fss = FairShareSystem(sim)
    link = SharedResource("link", 100.0)
    fss.open([link], size=math.inf, cap=50.0)
    sim.run(until=10.0)
    fss.set_capacity(link, 50.0)
    assert link.busy_time(sim.now) == pytest.approx(5.0)
    # From here on the same 50 u/s saturates the halved capacity.
    sim.run(until=15.0)
    assert link.busy_time(sim.now) == pytest.approx(5.0 + 5.0)


def test_zero_size_open_completes_without_rebalance():
    sim = Simulator()
    fss = FairShareSystem(sim)
    link = SharedResource("link", 100.0)
    background = fss.open([link], size=math.inf)
    rebalances = fss.rebalance_count
    rate = background.rate
    flow = fss.open([link], size=0.0)
    assert flow.done.triggered and flow.end_time == sim.now
    assert flow.remaining == 0.0
    assert fss.rebalance_count == rebalances  # flow set never changed
    assert background.rate == rate
    sim.run(until=1.0)
    assert flow.done.processed and flow.done.value is flow


def test_superseded_timers_are_cancelled_not_leaked():
    """Every rebalance re-derives the completion timer; the superseded one
    must leave the kernel heap via cancel(), not linger until its time."""
    sim = Simulator()
    fss = FairShareSystem(sim)
    link = SharedResource("link", 100.0)
    for i in range(20):
        fss.open([link], size=1000.0, name=f"f{i}")
    assert fss.timer_cancellations >= 19
    sim.run()
    assert fss.completed_count == 20
    # The kernel actually dropped the dead entries instead of firing them.
    assert sim.cancelled_pruned >= 19


def test_engine_metrics_flow_into_registry():
    metrics = MetricsRegistry()
    sim = Simulator()
    fss = FairShareSystem(sim, metrics=metrics)
    link = SharedResource("link", 100.0)
    for i in range(3):
        fss.open([link], size=100.0, name=f"f{i}")
    sim.run()
    assert metrics.get("fairshare.rebalances").value == fss.rebalance_count
    assert metrics.get("fairshare.flow.visits").value == fss.flow_visits
    assert (metrics.get("fairshare.timer.cancellations").value
            == fss.timer_cancellations)
    hist = metrics.get("fairshare.component.flows")
    assert hist.count >= 3 and hist.max <= fss.max_component_flows


def test_component_of_partitions_disjoint_graphs():
    sim = Simulator()
    fss = FairShareSystem(sim)
    a, b, c = (SharedResource(n, 100.0) for n in "abc")
    f_ab = fss.open([a, b], size=math.inf)
    f_c = fss.open([c], size=math.inf)
    flows, resources = fss.component_of(a)
    assert flows == {f_ab} and resources == {a, b}
    flows, resources = fss.component_of(c)
    assert flows == {f_c} and resources == {c}
    # A bridging flow merges the components.
    f_bc = fss.open([b, c], size=math.inf)
    flows, resources = fss.component_of(a)
    assert flows == {f_ab, f_bc, f_c} and resources == {a, b, c}
