"""Unit tests for max-min fair fluid-flow sharing."""

import math

import pytest

from repro.errors import ResourceError
from repro.sim import FairShareSystem, SharedResource, Simulator


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def fss(sim):
    return FairShareSystem(sim)


def test_single_flow_full_capacity(sim, fss):
    link = SharedResource("link", 100.0)
    flow = fss.open([link], size=1000.0)
    sim.run()
    assert flow.end_time == pytest.approx(10.0)
    assert flow.done.value is flow


def test_resource_requires_positive_capacity():
    with pytest.raises(ResourceError):
        SharedResource("bad", 0.0)


def test_two_flows_share_equally(sim, fss):
    link = SharedResource("link", 100.0)
    f1 = fss.open([link], size=1000.0)
    f2 = fss.open([link], size=1000.0)
    sim.run()
    # Both get 50 u/s for the whole transfer.
    assert f1.end_time == pytest.approx(20.0)
    assert f2.end_time == pytest.approx(20.0)


def test_short_flow_releases_bandwidth(sim, fss):
    link = SharedResource("link", 100.0)
    long = fss.open([link], size=1500.0)
    short = fss.open([link], size=500.0)
    sim.run()
    # Shared at 50 each until short finishes at t=10 (500/50); long then has
    # 1000 left at 100 u/s -> finishes at t=20.
    assert short.end_time == pytest.approx(10.0)
    assert long.end_time == pytest.approx(20.0)


def test_late_arrival_slows_existing_flow(sim, fss):
    link = SharedResource("link", 100.0)
    first = fss.open([link], size=1000.0)

    def late(sim):
        yield sim.timeout(5.0)
        second = fss.open([link], size=250.0)
        yield second.done

    sim.process(late(sim))
    sim.run()
    # First alone for 5 s (500 done), then 50/50 for 5 s (second's 250 done
    # at t=10), then first alone: 250 left at 100 -> t=12.5.
    assert first.end_time == pytest.approx(12.5)


def test_per_flow_cap_respected(sim, fss):
    link = SharedResource("link", 100.0)
    capped = fss.open([link], size=100.0, cap=10.0)
    sim.run()
    assert capped.end_time == pytest.approx(10.0)


def test_cap_leftover_goes_to_other_flows(sim, fss):
    link = SharedResource("link", 100.0)
    capped = fss.open([link], size=100.0, cap=10.0)
    greedy = fss.open([link], size=450.0)
    sim.run()
    # capped: 10 u/s; greedy: 90 u/s -> greedy done at 5 s, capped at 10 s.
    assert greedy.end_time == pytest.approx(5.0)
    assert capped.end_time == pytest.approx(10.0)


def test_multi_resource_path_bottleneck(sim, fss):
    fast = SharedResource("fast", 1000.0)
    slow = SharedResource("slow", 10.0)
    flow = fss.open([fast, slow], size=100.0)
    sim.run()
    assert flow.end_time == pytest.approx(10.0)


def test_cross_traffic_on_shared_middle_link(sim, fss):
    # Two flows share only the middle link; each also crosses a private edge.
    a_edge = SharedResource("a", 1000.0)
    b_edge = SharedResource("b", 1000.0)
    middle = SharedResource("middle", 100.0)
    fa = fss.open([a_edge, middle], size=500.0)
    fb = fss.open([b_edge, middle], size=500.0)
    sim.run()
    assert fa.end_time == pytest.approx(10.0)
    assert fb.end_time == pytest.approx(10.0)


def test_maxmin_unequal_bottlenecks(sim, fss):
    # Classic max-min: flow1 crosses r1 only; flow2 crosses r1 and r2 where
    # r2 is tighter.  flow2 pinned at 10 by r2; flow1 takes the rest of r1.
    r1 = SharedResource("r1", 100.0)
    r2 = SharedResource("r2", 10.0)
    f2 = fss.open([r1, r2], size=100.0)
    f1 = fss.open([r1], size=900.0)
    sim.run()
    assert f2.end_time == pytest.approx(10.0)
    assert f1.end_time == pytest.approx(10.0)


def test_zero_size_flow_completes_immediately(sim, fss):
    link = SharedResource("link", 100.0)
    flow = fss.open([link], size=0.0)
    assert flow.done.triggered
    sim.run()
    assert flow.end_time == 0.0


def test_negative_size_rejected(sim, fss):
    link = SharedResource("link", 100.0)
    with pytest.raises(ResourceError):
        fss.open([link], size=-1.0)


def test_empty_path_rejected(sim, fss):
    with pytest.raises(ResourceError):
        fss.open([], size=10.0)


def test_infinite_flow_closed_explicitly(sim, fss):
    link = SharedResource("link", 100.0)
    bg = fss.open([link], size=math.inf)

    def closer(sim):
        yield sim.timeout(3.0)
        moved = fss.close(bg)
        return moved

    p = sim.process(closer(sim))
    sim.run()
    assert p.value == pytest.approx(300.0)
    assert bg.end_time == pytest.approx(3.0)


def test_infinite_flow_contends_with_finite(sim, fss):
    link = SharedResource("link", 100.0)
    bg = fss.open([link], size=math.inf)
    finite = fss.open([link], size=500.0)

    def closer(sim):
        yield finite.done
        fss.close(bg)

    sim.process(closer(sim))
    sim.run()
    # finite runs at 50 u/s -> 10 s.
    assert finite.end_time == pytest.approx(10.0)


def test_close_inactive_flow_rejected(sim, fss):
    link = SharedResource("link", 100.0)
    flow = fss.open([link], size=10.0)
    sim.run()
    with pytest.raises(ResourceError):
        fss.close(flow)


def test_utilization_and_busy_time(sim, fss):
    link = SharedResource("link", 100.0)
    fss.open([link], size=500.0, cap=50.0)
    sim.run(until=5.0)
    assert link.utilization == pytest.approx(0.5)
    sim.run()
    # 50 u/s for 10 s over capacity 100 -> 5 resource-seconds of busy time.
    assert link.busy_time(sim.now) == pytest.approx(5.0)
    assert link.current_load == 0.0


def test_vcpu_cap_stacking_models_cpu():
    # Two "tasks" on one 1-VCPU VM must share a single core even on an
    # 8-core host: the VM's vcpu resource is the bottleneck.
    sim = Simulator()
    fss = FairShareSystem(sim)
    host_cpu = SharedResource("host.cpu", 8.0)
    vcpu = SharedResource("vm.vcpu", 1.0)
    t1 = fss.open([vcpu, host_cpu], size=10.0, cap=1.0)
    t2 = fss.open([vcpu, host_cpu], size=10.0, cap=1.0)
    sim.run()
    assert t1.end_time == pytest.approx(20.0)
    assert t2.end_time == pytest.approx(20.0)


def test_host_oversubscription_models_contention():
    # 4 VMs (1 VCPU each) on a 2-core host each run one task: each VCPU gets
    # half a core.
    sim = Simulator()
    fss = FairShareSystem(sim)
    host_cpu = SharedResource("host.cpu", 2.0)
    flows = []
    for i in range(4):
        vcpu = SharedResource(f"vm{i}.vcpu", 1.0)
        flows.append(fss.open([vcpu, host_cpu], size=10.0, cap=1.0))
    sim.run()
    for flow in flows:
        assert flow.end_time == pytest.approx(20.0)


def test_many_flows_complete_and_conserve_work(sim, fss):
    link = SharedResource("link", 100.0)
    sizes = [100.0 * (i % 7 + 1) for i in range(40)]
    flows = [fss.open([link], size=s) for s in sizes]
    sim.run()
    assert all(f.end_time is not None for f in flows)
    assert fss.completed_count == len(flows)
    # Work conservation: the link ran at full capacity until the last flow
    # finished (all flows start at t=0 and the link is always saturated).
    total = sum(sizes)
    last = max(f.end_time for f in flows)
    assert last == pytest.approx(total / 100.0)
