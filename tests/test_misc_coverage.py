"""Coverage of remaining small surfaces: report objects, file/split
helpers, model dataclasses, placement accessors."""

import pytest

from repro.config import PlatformConfig
from repro.hdfs import Block, DfsFile, FileSplit
from repro.mapreduce.runner import JobReport, TaskAttempt
from repro.ml.base import ClusterModel, ClusteringResult
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.virt.virtlm import ClusterMigrationReport
from repro.virt.migration import MigrationRecord


def test_dfsfile_aggregates():
    f = DfsFile("/x", blocks=[Block("b1", 100, 3), Block("b2", 50, 2)])
    assert f.size == 150
    assert f.n_records == 5
    assert [b.block_id for b in f] == ["b1", "b2"]
    split = FileSplit(path="/x", block=f.blocks[0], index=0)
    assert split.size == 100


def test_namenode_splits():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=0))
    cluster = platform.provision_cluster("s", ClusterSpec.single_host(3))
    platform.upload(cluster, "/f", list(range(10)), timed=False)
    splits = cluster.namenode.splits("/f")
    assert len(splits) >= 1
    assert splits[0].index == 0
    assert splits[0].path == "/f"


def test_job_report_properties():
    report = JobReport(job_name="j", submitted_at=10.0, finished_at=30.0,
                       map_phase_end=18.0)
    assert report.elapsed == 20.0
    assert report.map_phase_s == 8.0
    assert report.reduce_phase_s == 12.0
    assert report.locality_fractions() == {}
    report.tasks.append(TaskAttempt("m-0", "map", "t", 0, 1, 10, 5, "node"))
    report.tasks.append(TaskAttempt("m-1", "map", "t", 0, 2, 10, 5, "remote"))
    fractions = report.locality_fractions()
    assert fractions["node"] == pytest.approx(0.5)
    assert report.tasks[0].elapsed == 1


def test_cluster_model_and_result_helpers():
    model = ClusterModel(2, (1.0, 2.0), weight=5.0, radius=0.5)
    assert model.as_tuple() == (2, (1.0, 2.0), 5.0, 0.5)
    assert list(model.center_array()) == [1.0, 2.0]
    result = ClusteringResult(algorithm="x", models=[model])
    assert result.k == 1
    assert result.centers().shape == (1, 2)
    empty = ClusteringResult(algorithm="x", models=[])
    assert empty.centers().size == 0


def test_migration_report_edge_cases():
    report = ClusterMigrationReport(label="empty")
    assert report.overall_downtime_s == 0.0
    assert report.max_downtime_s == 0.0
    assert report.downtime_spread() == 1.0
    record = MigrationRecord(vm="v", source="a", destination="b",
                             memory_bytes=100, started_at=0.0,
                             total_sent_bytes=250.0)
    assert record.overhead_ratio == 2.5
    assert record.n_rounds == 0


def test_placement_accessors():
    placement = ClusterSpec.packed(6, hosts=2).placement(2)
    assert placement.host_of(0) == 0
    assert placement.host_of(5) == 1
    assert placement.n_vms == 6


def test_tracker_lookup_and_hosts():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=0))
    cluster = platform.provision_cluster("t", ClusterSpec.single_host(3))
    tracker = cluster.tracker_of(cluster.workers[0].name)
    assert tracker is not None and tracker.vm is cluster.workers[0]
    assert cluster.tracker_of("nope") is None
    assert cluster.hosts_used() == {"pm0"}
    assert not cluster.cross_domain
    assert cluster.n_nodes == 3
