"""Per-job bottleneck attribution over a real Wordcount run."""

import pytest

from repro.config import PlatformConfig
from repro.observatory.attribution import CLASSES, FlowLog, classify
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

LINES = ["kappa lambda mu nu xi omicron pi rho"] * 600


@pytest.fixture(scope="module")
def run():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=4))
    cluster = platform.provision_cluster("attr", ClusterSpec.single_host(6))
    cluster.telemetry.enable_flow_log()
    platform.upload(cluster, "/in", lines_as_records(LINES),
                    sizeof=line_record_sizeof, timed=False)
    job = wordcount_job("/in", "/out", n_reduces=3)
    report = platform.run_job(cluster, job)
    return platform, cluster, job, report


def test_attribution_covers_the_critical_path(run):
    _platform, cluster, job, report = run
    attribution = cluster.telemetry.attribution(job.name)
    assert attribution.job == job.name
    assert attribution.makespan == pytest.approx(report.elapsed, rel=0.01)
    assert attribution.coverage >= 0.90
    assert attribution.dominant in CLASSES


def test_segments_tile_the_makespan_and_blame_known_classes(run):
    _platform, cluster, job, _report = run
    attribution = cluster.telemetry.attribution(job.name)
    segments = attribution.segments
    assert segments
    for before, after in zip(segments, segments[1:]):
        assert after.start == pytest.approx(before.end)
    for seg in segments:
        assert seg.blame in (*CLASSES, "wait")
        if seg.blame == "wait":
            assert seg.n_flows == 0
        else:
            assert seg.n_flows > 0
            assert seg.covered_s <= seg.duration + 1e-6
    total = attribution.class_seconds
    assert sum(total.values()) <= attribution.makespan * (1 + 1e-6)
    phase_total = {}
    for phase in ("map", "reduce", "other"):
        for klass, s in attribution.phase_seconds(phase).items():
            phase_total[klass] = phase_total.get(klass, 0.0) + s
    assert phase_total == pytest.approx(total)


def test_describe_mentions_job_and_every_segment(run):
    _platform, cluster, job, _report = run
    attribution = cluster.telemetry.attribution(job.name)
    text = attribution.describe()
    assert job.name in text
    assert text.count("\n") == len(attribution.segments)


def test_classify_maps_paths_onto_resource_classes():
    assert classify("nfs:image:vm1", ("h1.nic",)) == "nfs"
    assert classify("vm1:disk:read", ("vm1.disk",)) == "disk"
    assert classify("vm1:dfs:b1", ("h1.nic", "nfs.vnic")) == "disk"
    assert classify("m-0:r1:shuffle", ("h1.nic", "h2.bridge")) == "network"
    assert classify("vm1:task:m-0", ("vm1.cpu",)) == "cpu"


def test_flow_log_window_queries():
    class FakeFlow:
        name = "vm1:task:m-0"
        path = ()
        start_time, end_time = 2.0, 5.0
        size = moved = transferred = 10.0

    log = FlowLog()
    log.append(FakeFlow())
    assert len(log) == 1
    assert log.between(0.0, 10.0) and not log.between(6.0, 10.0)
    record = log.records[0]
    assert record.klass == "cpu" and record.duration == 3.0
    assert {"vm1", "task", "m-0"} == set(record.tokens)
