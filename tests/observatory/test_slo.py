"""SLO and alert-book unit tests: validation, fire/resolve semantics,
deduplication, and the deterministic content digest."""

import pytest

from repro.errors import MonitorError
from repro.observatory.slo import DEFAULT_SLOS, AlertBook, SloSpec


def book_with(*specs):
    book = AlertBook()
    for spec in specs:
        book.register(spec)
    return book


def test_spec_rejects_unknown_severity_and_direction():
    with pytest.raises(MonitorError):
        SloSpec("x", "sig", 1.0, severity="fatal")
    with pytest.raises(MonitorError):
        SloSpec("x", "sig", 1.0, direction="sideways")


def test_violated_by_respects_direction():
    above = SloSpec("a", "sig", 2.0)
    assert above.violated_by(2.5) and not above.violated_by(2.0)
    below = SloSpec("b", "sig", 0.5, direction="below")
    assert below.violated_by(0.4) and not below.violated_by(0.5)


def test_fire_requires_registered_slo():
    book = AlertBook()
    with pytest.raises(MonitorError):
        book.fire("nope", "t", 1.0, "cpu")


def test_fire_deduplicates_and_keeps_worst_value():
    book = book_with(SloSpec("hot", "sig", 1.0))
    first = book.fire("hot", "vm1", 2.0, "cpu", detail="first")
    again = book.fire("hot", "vm1", 5.0, "cpu", detail="worse")
    assert again is first
    assert first.value == 5.0 and first.detail == "worse"
    # A milder refresh neither lowers the value nor rewrites the detail.
    book.fire("hot", "vm1", 3.0, "cpu", detail="milder")
    assert first.value == 5.0 and first.detail == "worse"
    assert book.count("hot") == 1


def test_below_direction_keeps_lowest_value():
    book = book_with(SloSpec("slow", "sig", 0.5, direction="below"))
    alert = book.fire("slow", "nic", 0.4, "network")
    book.fire("slow", "nic", 0.1, "network")
    assert alert.value == 0.1


def test_resolve_closes_and_allows_refire():
    book = book_with(SloSpec("hot", "sig", 1.0))
    book.fire("hot", "vm1", 2.0, "cpu")
    assert book.is_active("hot", "vm1")
    closed = book.resolve("hot", "vm1")
    assert closed.resolved_at is not None and not closed.active
    assert closed.duration == closed.resolved_at - closed.fired_at
    assert book.resolve("hot", "vm1") is None          # idempotent
    refired = book.fire("hot", "vm1", 3.0, "cpu")
    assert refired is not closed
    assert [a.active for a in book.history("hot")] == [False, True]


def test_active_and_history_filters():
    book = book_with(SloSpec("hot", "sig", 1.0),
                     SloSpec("cold", "sig", 1.0))
    book.fire("hot", "vm1", 2.0, "cpu")
    book.fire("cold", "vm2", 2.0, "cpu")
    book.resolve("cold", "vm2")
    assert [a.slo for a in book.active()] == ["hot"]
    assert book.active("cold") == []
    assert book.count() == 2 and book.count("cold") == 1
    assert "ACTIVE" in book.describe() and "resolved" in book.describe()
    assert AlertBook().describe() == "no alerts"


def replay(moves):
    book = book_with(SloSpec("hot", "sig", 1.0, severity="critical"))
    for move, target, value in moves:
        if move == "fire":
            book.fire("hot", target, value, "cpu")
        else:
            book.resolve("hot", target)
    return book


def test_digest_is_stable_and_content_sensitive():
    moves = [("fire", "vm1", 2.0), ("fire", "vm2", 3.0),
             ("resolve", "vm1", 0.0)]
    digest = replay(moves).digest()
    assert digest == replay(moves).digest()
    assert len(digest) == 16 and int(digest, 16) >= 0
    assert digest != replay(moves[:-1]).digest()
    assert digest != replay(
        [("fire", "vm1", 2.5)] + moves[1:]).digest()


def test_default_catalogue_is_well_formed():
    names = [spec.name for spec in DEFAULT_SLOS]
    assert len(names) == len(set(names))
    for spec in DEFAULT_SLOS:
        assert spec.signal and spec.description
