"""Alert-driven tuner rules: observatory alerts become applied knobs."""

from repro.config import PlatformConfig
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.tuner import (MapReduceTuner, MigrateOffHotHostRule,
                         SpeculateOnStragglersRule)


def make(n=6, seed=2):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster("alert-tn", ClusterSpec.single_host(n))
    obs = cluster.observatory(interval=1.0)   # built, never started
    cluster.telemetry.monitor.sample_now(platform.sim.now)
    return platform, cluster, obs


def test_straggler_alerts_enable_speculation():
    _platform, cluster, obs = make()
    assert not cluster.config.speculative_execution
    obs.book.fire("straggler-task", "m-00003", 6.1, "node")
    tuner = MapReduceTuner(cluster,
                           rules=[SpeculateOnStragglersRule(obs)])
    recommendation = tuner.step()
    assert recommendation is not None and recommendation.kind == "reconfigure"
    assert "m-00003" in recommendation.reason
    assert cluster.config.speculative_execution
    assert tuner.log[-1].applied


def test_straggler_rule_ratchets_then_floors():
    _platform, cluster, obs = make()
    rule = SpeculateOnStragglersRule(obs, ratchet=0.5, floor=1.2)
    tuner = MapReduceTuner(cluster, rules=[rule])
    obs.book.fire("straggler-task", "m-00001", 5.0, "node")
    tuner.step()                                   # speculation on
    slowdown = cluster.config.speculative_slowdown
    obs.book.fire("straggler-task", "m-00002", 5.0, "node")
    second = tuner.step()
    assert second.config_changes == {
        "speculative_slowdown": max(1.2, slowdown * 0.5)}
    # Drive the ratchet to its floor; once there the rule abstains.
    for i in range(10):
        obs.book.fire("straggler-task", f"m-1{i:04d}", 5.0, "node")
        if tuner.recommend() is None:
            break
        tuner.step()
    assert cluster.config.speculative_slowdown == 1.2
    obs.book.fire("straggler-task", "m-99999", 5.0, "node")
    assert tuner.recommend() is None


def test_straggler_rule_cursor_consumes_alerts_once():
    _platform, cluster, obs = make()
    rule = SpeculateOnStragglersRule(obs)
    tuner = MapReduceTuner(cluster, rules=[rule])
    assert tuner.recommend() is None               # no alerts yet
    obs.book.fire("straggler-task", "m-00001", 5.0, "node")
    assert tuner.step() is not None
    # The same alert is not consumed twice.
    assert tuner.recommend() is None


def test_hot_host_alert_migrates_busiest_resident():
    _platform, cluster, obs = make()
    hot = cluster.workers[0].host
    residents_before = {vm.name for vm in cluster.vms
                        if vm.host is not None and vm.host.name == hot.name}
    obs.book.fire("hot-host", hot.name, 0.97, "cpu")
    tuner = MapReduceTuner(cluster, rules=[MigrateOffHotHostRule(obs)])
    recommendation = tuner.step()
    assert recommendation is not None and recommendation.kind == "migrate"
    ((moved, _target_index),) = recommendation.migrations
    assert moved in residents_before
    dc = cluster.datacenter
    assert dc.vms[moved].host.name != hot.name     # migration ran
    # Cursor: the consumed alert does not retrigger.
    assert tuner.recommend() is None


def test_hot_host_rule_abstains_without_alerts_or_residents():
    _platform, cluster, obs = make()
    tuner = MapReduceTuner(cluster, rules=[MigrateOffHotHostRule(obs)])
    assert tuner.recommend() is None
    obs.book.fire("hot-host", "no-such-host", 0.99, "cpu")
    assert tuner.recommend() is None
