"""Unit tests for multi-window multi-burn-rate SLO evaluation."""

import pytest

from repro.errors import ConfigError
from repro.observatory.burnrate import (DEFAULT_BURN_WINDOWS,
                                        SERIES_BACKLOG, SERIES_LATENCY,
                                        SERVICE_BURN_POLICIES,
                                        BurnPolicy, BurnRateEngine,
                                        BurnWindow)
from repro.observatory.slo import SERVICE_SLOS, AlertBook
from repro.telemetry.timeseries import TimeSeriesStore

TICK = 5.0


def make_engine(policies=None):
    book = AlertBook()
    for spec in SERVICE_SLOS:
        book.register(spec)
    store = TimeSeriesStore(step=TICK)
    kwargs = {"policies": tuple(policies)} if policies else {}
    return BurnRateEngine(store, book, target="svc", **kwargs), book


def drive(engine, ticks, error, t0=0.0):
    """Record ``error`` latency-fraction for ``ticks`` ticks, evaluating."""
    now = t0
    for _ in range(ticks):
        engine.observe_service_tick(now, latency_error=error,
                                    rejection_frac=0.0,
                                    backlog_per_slot=0.0)
        engine.evaluate(now)
        now += TICK
    return now


# -- validation --------------------------------------------------------------

def test_window_and_policy_validation():
    with pytest.raises(ConfigError):
        BurnWindow(long_s=60.0, short_s=120.0, burn=1.0)
    with pytest.raises(ConfigError):
        BurnWindow(long_s=60.0, short_s=30.0, burn=0.0)
    with pytest.raises(ConfigError):
        BurnPolicy("s", "series", budget=0.0)
    with pytest.raises(ConfigError):
        # burn x budget > 1: an error fraction can never reach it.
        BurnPolicy("s", "series", budget=0.5,
                   windows=(BurnWindow(60.0, 30.0, burn=10.0),))
    with pytest.raises(ConfigError):
        BurnRateEngine(TimeSeriesStore(), AlertBook(), "t", policies=())


def test_catalogue_windows_are_alive():
    for policy in SERVICE_BURN_POLICIES:
        assert policy.windows
        for window in policy.windows:
            assert window.burn * policy.budget <= 1.0


# -- firing behaviour --------------------------------------------------------

def test_sustained_burn_fires_with_context():
    engine, book = make_engine()
    # p99 budget 0.02, fast window burn 10 → error fraction 0.2 sustained
    # over the 300 s long window must page.
    drive(engine, ticks=80, error=1.0)
    active = [a for a in book.alerts if a.slo == "service-p99"]
    assert active and active[0].target == "svc"
    assert "burn" in active[0].detail and "budget" in active[0].detail


def test_single_bad_tick_does_not_page():
    engine, book = make_engine()
    now = drive(engine, ticks=60, error=0.0)
    engine.observe_service_tick(now, latency_error=1.0,
                                rejection_frac=0.0, backlog_per_slot=0.0)
    engine.evaluate(now)
    now = drive(engine, ticks=60, error=0.0, t0=now + TICK)
    assert not book.alerts                      # long window never agreed


def test_alert_resolves_with_hysteresis_after_burn_stops():
    engine, book = make_engine()
    now = drive(engine, ticks=80, error=1.0)
    assert book.is_active("service-p99", "svc")
    # Clean ticks push every long-window burn under 0.5x its threshold.
    drive(engine, ticks=400, error=0.0, t0=now)
    assert not book.is_active("service-p99", "svc")
    resolved = [a for a in book.alerts if a.slo == "service-p99"]
    assert resolved[0].resolved_at is not None


def test_backlog_is_a_binary_indicator_with_objective():
    engine, _ = make_engine()
    engine.observe_service_tick(0.0, latency_error=0.0,
                                rejection_frac=0.0, backlog_per_slot=2.0)
    engine.observe_service_tick(TICK, latency_error=0.0,
                                rejection_frac=0.0, backlog_per_slot=0.5)
    series = engine.store.get(SERIES_BACKLOG)
    values = [b.last for b in series.latest(2)]
    assert values == [1.0, 0.0]                 # objective 1.0 splits them


def test_record_clamps_fractions():
    engine, _ = make_engine()
    engine.record(SERIES_LATENCY, 7.5, at=0.0)
    engine.record(SERIES_LATENCY, -2.0, at=TICK)
    series = engine.store.get(SERIES_LATENCY)
    assert series.latest(1, tier=0)[0].max <= 1.0
    assert series.latest(1, tier=0)[0].min >= 0.0


def test_states_report_both_windows():
    engine, _ = make_engine()
    engine.observe_service_tick(0.0, latency_error=1.0,
                                rejection_frac=1.0, backlog_per_slot=9.0)
    states = engine.evaluate(0.0)
    labels = {(s.slo, s.window) for s in states}
    assert ("service-p99", "fast") in labels
    assert ("service-p99", "slow") in labels
    assert len(states) == sum(len(p.windows)
                              for p in SERVICE_BURN_POLICIES)


def test_digest_is_the_store_digest():
    engine, _ = make_engine()
    drive(engine, ticks=10, error=0.5)
    assert engine.digest() == engine.store.digest()


def test_default_windows_detection_time_algebra():
    fast = DEFAULT_BURN_WINDOWS[0]
    # Total outage (error fraction 1.0) on a 2% budget burns at 50x; the
    # fast pair needs the long window mean to reach burn 10, i.e. 20% of
    # 300 s ≈ 60 s of outage.  Sanity-check the catalogue numbers.
    assert fast.long_s == 300.0 and fast.burn == 10.0
    detection_s = fast.burn * 0.02 * fast.long_s
    assert detection_s == pytest.approx(60.0)
