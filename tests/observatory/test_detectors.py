"""Detector unit tests driven by synthetic trace events.

The chaos matrix experiment exercises the link/disk/liveness detectors
end to end; these tests pin the event-driven detectors (straggler, skew,
node liveness) whose signals are easy to fabricate precisely."""

import pytest

from repro.config import PlatformConfig
from repro.observatory.detectors import (NodeLivenessDetector, SkewDetector,
                                         StragglerDetector)
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.sim.trace import TraceEvent
from repro.telemetry import events as EV


@pytest.fixture()
def obs():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=3))
    cluster = platform.provision_cluster("det", ClusterSpec.single_host(4))
    # Built but never started: tests drive on_event/tick by hand.
    return cluster.observatory(interval=1.0)


def detector(obs, cls):
    return next(d for d in obs.detectors if isinstance(d, cls))


def attempt_events(span_id, name, start, end, failed=False):
    kind = EV.TASK_MAP
    yield TraceEvent(start, f"{kind}.start", name, {"span": span_id})
    if end is not None:
        yield TraceEvent(end, f"{kind}.end", name,
                         {"span": span_id, "failed": failed})


class TestStraggler:
    def feed(self, det, n_finished, runtime=10.0):
        for i in range(n_finished):
            for ev in attempt_events(i, f"m-{i:05d}", 0.0, runtime):
                det.on_event(ev)

    def test_fires_on_robust_outlier_and_resolves_on_finish(self, obs):
        det = detector(obs, StragglerDetector)
        self.feed(det, 6)
        slow = TraceEvent(0.0, f"{EV.TASK_MAP}.start", "m-00099",
                          {"span": 99})
        det.on_event(slow)
        det.tick(60.0)
        active = obs.active_alerts("straggler-task")
        assert [a.target for a in active] == ["m-00099"]
        assert active[0].attribution == "node"
        done = TraceEvent(61.0, f"{EV.TASK_MAP}.end", "m-00099",
                          {"span": 99})
        det.on_event(done)
        assert obs.active_alerts("straggler-task") == []

    def test_needs_min_samples(self, obs):
        det = detector(obs, StragglerDetector)
        self.feed(det, det.MIN_SAMPLES - 1)
        det.on_event(TraceEvent(0.0, f"{EV.TASK_MAP}.start", "m-00099",
                                {"span": 99}))
        det.tick(1000.0)
        assert obs.alerts("straggler-task") == []

    def test_absolute_guard_blocks_tight_distributions(self, obs):
        det = detector(obs, StragglerDetector)
        self.feed(det, 8, runtime=10.0)
        det.on_event(TraceEvent(0.0, f"{EV.TASK_MAP}.start", "m-00099",
                                {"span": 99}))
        # MAD is 0, so the score is huge — but 12s < 1.5 x 10s median.
        det.tick(12.0)
        assert obs.alerts("straggler-task") == []

    def test_failed_attempts_do_not_pollute_the_baseline(self, obs):
        det = detector(obs, StragglerDetector)
        for ev in attempt_events(1, "m-00001", 0.0, 500.0, failed=True):
            det.on_event(ev)
        assert det._finished == {}


class TestSkew:
    def fetch(self, det, partition, nbytes, t=1.0, job="job1"):
        det.on_event(TraceEvent(
            t, "shuffle.fetch.start", f"m-00000:{partition}",
            {"nbytes": nbytes, "job": job}))

    def test_fires_on_hot_partition(self, obs):
        det = detector(obs, SkewDetector)
        for i in range(4):
            self.fetch(det, f"r{i}", 4 << 20)
        self.fetch(det, "r0", 16 << 20)
        det.tick(2.0)
        (alert,) = obs.active_alerts("reducer-skew")
        assert alert.target == "job1:r0" and alert.attribution == "data"
        assert alert.value == pytest.approx(5.0)

    def test_quiet_below_min_partitions_or_bytes(self, obs):
        det = detector(obs, SkewDetector)
        self.fetch(det, "r0", 64 << 20)
        self.fetch(det, "r1", 1 << 20)
        det.tick(2.0)                       # only 2 partitions
        assert obs.alerts("reducer-skew") == []
        det2 = detector(obs, SkewDetector)
        for i in range(6):
            self.fetch(det2, f"r{i}", 1000)  # tiny: under MIN_BYTES
        self.fetch(det2, "r0", 100_000)
        det2.tick(3.0)
        assert obs.alerts("reducer-skew") == []

    def test_job_submit_resets_partition_accounting(self, obs):
        det = detector(obs, SkewDetector)
        for i in range(4):
            self.fetch(det, f"r{i}", 4 << 20)
        self.fetch(det, "r0", 64 << 20)
        det.on_event(TraceEvent(5.0, EV.JOB_SUBMIT, "job1"))
        det.tick(6.0)
        assert det._bytes == {}
        assert obs.alerts("reducer-skew") == []

    def test_concurrent_jobs_do_not_pool_partitions(self, obs):
        # Fuzzer regression: balanced shuffles from jobs with different
        # reduce counts must not be judged against each other's median.
        det = detector(obs, SkewDetector)
        for i in range(4):
            self.fetch(det, f"r{i}", 8 << 20, job="tera")
        for i in range(4):
            self.fetch(det, f"r{i}", 2 << 20, job="wc")
        det.tick(2.0)
        assert obs.alerts("reducer-skew") == []

    def test_job_submit_keeps_other_jobs_buckets(self, obs):
        det = detector(obs, SkewDetector)
        for i in range(4):
            self.fetch(det, f"r{i}", 4 << 20, job="keep")
        self.fetch(det, "r0", 16 << 20, job="keep")
        det.on_event(TraceEvent(5.0, EV.JOB_SUBMIT, "other"))
        det.tick(6.0)
        (alert,) = obs.active_alerts("reducer-skew")
        assert alert.target == "keep:r0"


class TestNodeLiveness:
    def test_vm_failure_fires_and_recovery_resolves(self, obs):
        det = detector(obs, NodeLivenessDetector)
        vm = obs.telemetry.vms[0].name
        det.on_event(TraceEvent(10.0, EV.VM_FAILED, vm))
        (alert,) = obs.active_alerts("node-down")
        assert alert.target == vm and alert.attribution == "node"
        det.on_event(TraceEvent(20.0, EV.VM_RECOVERED, vm))
        assert obs.active_alerts("node-down") == []
        assert obs.alerts("host-down") == []

    def test_correlated_wipeout_upgrades_to_host_down(self, obs):
        det = detector(obs, NodeLivenessDetector)
        machine = obs.telemetry.datacenter.machines[0]
        residents = sorted(machine.vms)
        assert len(residents) >= 2
        for i, vm in enumerate(residents):
            det.on_event(TraceEvent(10.0 + i, EV.VM_FAILED, vm))
        (alert,) = obs.active_alerts("host-down")
        assert alert.target == machine.name

    def test_slow_uncorrelated_failures_stay_node_level(self, obs):
        det = detector(obs, NodeLivenessDetector)
        machine = obs.telemetry.datacenter.machines[0]
        residents = sorted(machine.vms)
        gap = NodeLivenessDetector.CORRELATION_S + 5.0
        for i, vm in enumerate(residents):
            det.on_event(TraceEvent(10.0 + i * gap, EV.VM_FAILED, vm))
        assert obs.alerts("host-down") == []
        assert len(obs.active_alerts("node-down")) == len(residents)
