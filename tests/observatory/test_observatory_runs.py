"""Observatory lifecycle, read-only guarantee, and the chaos matrix.

The heavyweight checks here mirror the PR's acceptance criteria:

* a detectors-on run leaves the simulated outcome and the fair-share
  engine's deterministic counters bit-identical (the observatory is
  read-only);
* the chaos detection-matrix experiment detects every fault class with
  the right attribution, zero false positives on the clean run, and a
  digest that is stable for the seed.
"""

import re

import pytest

from repro.config import PlatformConfig
from repro.errors import MonitorError
from repro.experiments import observatory as obs_experiment
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

LINES = ["sigma tau upsilon phi chi psi omega"] * 500


def run_wordcount(with_observatory: bool):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=6))
    cluster = platform.provision_cluster("ro", ClusterSpec.single_host(6))
    platform.upload(cluster, "/in", lines_as_records(LINES),
                    sizeof=line_record_sizeof, timed=False)
    obs = cluster.observatory(interval=2.0).start() if with_observatory \
        else None
    job = wordcount_job("/in", "/out", n_reduces=3)
    report = platform.run_job(cluster, job)
    if obs is not None:
        obs.stop()
    fss = platform.datacenter.fss
    counters = (fss.rebalance_count, fss.flow_visits, fss.completed_count)
    return (repr(report.elapsed), platform.collect(cluster, report),
            counters, obs)


def test_detectors_on_run_is_bit_identical():
    off_elapsed, off_records, off_counters, _ = run_wordcount(False)
    on_elapsed, on_records, on_counters, obs = run_wordcount(True)
    assert on_elapsed == off_elapsed
    assert on_records == off_records
    assert on_counters == off_counters
    assert obs.ticks > 0


def test_lifecycle_and_validation():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=6))
    cluster = platform.provision_cluster("life", ClusterSpec.single_host(4))
    with pytest.raises(MonitorError):
        cluster.observatory(interval=0.0)
    obs = cluster.observatory(interval=1.0)
    assert not obs.running
    obs.start()
    assert obs.running
    assert obs.start() is obs            # idempotent
    platform.sim.run(until=5.5)
    obs.stop()
    assert not obs.running and obs.ticks >= 5
    ticks = obs.ticks
    platform.sim.run(until=20.0)
    assert obs.ticks == ticks            # a stopped observatory stays quiet
    assert obs.digest() == obs.digest()


DIGEST_RE = re.compile(r"alert digest ([0-9a-f]{16})")


def matrix_digest(result):
    for note in result.notes:
        match = DIGEST_RE.search(note)
        if match:
            return match.group(1)
    raise AssertionError(f"no digest note in {result.notes}")


def test_chaos_matrix_detects_all_faults_with_stable_digest():
    # run() raises on any missed detection, wrong attribution, stray
    # alert, clean-run false positive, or attribution coverage < 90%.
    result = obs_experiment.run(seed=7, quick=True)
    scenarios = [row[0] for row in result.rows]
    assert scenarios == ["clean", *obs_experiment.DETECTION_MATRIX]
    assert all(row[-1] for row in result.rows)
    # Same seed, same matrix, same alert books.
    again = obs_experiment.run(seed=7, quick=True)
    assert matrix_digest(result) == matrix_digest(again)
