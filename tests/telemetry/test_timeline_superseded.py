"""Regression: superseded task attempts must not count as path work.

A chaos-killed (or speculation-losing) attempt leaves a closed span under
the same ``(kind, name)`` as the attempt that redid its work.  The
critical-path walk used to treat both as legitimate predecessors, so one
task's runtime could be double-counted — and ``job_timeline`` makespans
drifted above the reported elapsed time on faulty runs."""

import pytest

from repro.chaos import ChaosInjector, Fault, FaultPlan
from repro.experiments import chaos_faults
from repro.sim.trace import Tracer
from repro.telemetry import build_timeline, events as EV
from repro.telemetry.timeline import _superseded_ids


def synthetic(mark_loser):
    """A job with two m-0 attempts; the first is marked by mark_loser."""
    tracer = Tracer()
    job = tracer.begin_span(0.0, EV.JOB_RUN, "wc")
    loser = tracer.begin_span(1.0, EV.TASK_MAP, "m-0", parent=job,
                              tracker="vm01")
    tracer.end_span(loser, 11.0, **mark_loser)
    winner = tracer.begin_span(2.0, EV.TASK_MAP, "m-0", parent=job,
                               tracker="vm02")
    tracer.end_span(winner, 12.0)
    tracer.end_span(job, 12.0)
    return tracer, loser, winner


@pytest.mark.parametrize("mark", [{"failed": True}, {"won": False}])
def test_losing_attempts_are_superseded(mark):
    tracer, loser, winner = synthetic(mark)
    assert _superseded_ids(tracer.spans) == {loser.span_id}
    path = build_timeline("wc", tracer.spans).critical_path()
    span_ids = {seg.span.span_id for seg in path.span_segments()}
    assert winner.span_id in span_ids
    assert loser.span_id not in span_ids


def test_attempts_with_no_successful_sibling_are_kept():
    tracer = Tracer()
    job = tracer.begin_span(0.0, EV.JOB_RUN, "wc")
    only = tracer.begin_span(1.0, EV.TASK_MAP, "m-0", parent=job)
    tracer.end_span(only, 5.0, failed=True)
    tracer.end_span(job, 5.0)
    assert _superseded_ids(tracer.spans) == set()


def test_chaos_killed_task_does_not_double_count():
    # Clean probe: learn which tracker runs a map and when.  The chaos
    # run below is seeded identically, so up to the injection instant it
    # replays the clean run — crashing that tracker mid-span is
    # guaranteed to kill an in-flight attempt.
    seed, size_mb = 7, chaos_faults.QUICK_SIZE_MB
    platform, cluster, job = chaos_faults._build(seed, size_mb)
    done = platform.runner(cluster).submit(job)
    platform.sim.run_until(done)
    clean = done.value
    probe = next(s for s in platform.tracer.spans
                 if s.kind == EV.TASK_MAP)
    victim, at = probe.attrs["tracker"], (probe.start + probe.end) / 2

    platform, cluster, job = chaos_faults._build(seed, size_mb)
    runner = platform.runner(cluster)
    plan = FaultPlan(name="kill-one")
    plan.add(Fault(at=at, kind="vm.crash", target=victim,
                   duration=clean.elapsed))
    done = runner.submit(job)
    ChaosInjector(cluster, plan).start()
    platform.sim.run_until(done)
    report = done.value

    spans = list(platform.tracer.spans)
    failed = [s for s in spans if s.kind == EV.TASK_MAP
              and s.attrs.get("failed")]
    assert failed, "the chaos kill produced no failed attempt"
    assert _superseded_ids(spans) >= {s.span_id for s in failed}

    path = cluster.telemetry.critical_path(job.name)
    path_ids = {seg.span.span_id for seg in path.span_segments()}
    assert path_ids.isdisjoint({s.span_id for s in failed})
    # The path still tiles the (fault-lengthened) makespan exactly.
    assert path.makespan == pytest.approx(report.elapsed, rel=0.01)
    assert path.work_s + path.wait_s == pytest.approx(path.makespan)
