"""Facade tests: ownership, deprecations, and the tuner's telemetry path."""

import warnings

import pytest

from repro.config import PlatformConfig
from repro.errors import MonitorError, TunerError
from repro.monitor import NmonAnalyser, NmonMonitor
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.telemetry import Telemetry
from repro.tuner import IncreaseSlotsWhenCpuIdleRule, MapReduceTuner


def make(seed=5, n=4):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster("fac", ClusterSpec.single_host(n))
    return platform, cluster


def test_cluster_and_platform_expose_one_telemetry_handle():
    platform, cluster = make()
    assert isinstance(cluster.telemetry, Telemetry)
    assert platform.telemetry is platform.datacenter.telemetry
    # The cluster facade shares the platform's tracer and registry.
    assert cluster.telemetry.tracer is platform.tracer
    assert cluster.telemetry.metrics is platform.datacenter.metrics


def test_facade_owns_monitor_and_analyser():
    _platform, cluster = make()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        monitor = cluster.telemetry.monitor      # no deprecation warning
        assert cluster.telemetry.monitor is monitor
        analyser = cluster.telemetry.analyser
        assert analyser.monitor is monitor


def test_direct_monitor_construction_warns():
    _platform, cluster = make()
    with pytest.warns(DeprecationWarning, match="cluster.telemetry"):
        NmonMonitor(cluster.vms)


def test_empty_scope_raises_on_monitor_access():
    platform, _cluster = make()
    telemetry = Telemetry(platform.sim, platform.tracer)
    with pytest.raises(MonitorError):
        telemetry.monitor


def test_bottleneck_through_facade_matches_analyser():
    platform, cluster = make()
    telemetry = cluster.telemetry
    telemetry.monitor.sample_now(platform.sim.now)
    report = telemetry.bottleneck()
    assert report.busiest_resource
    shared = telemetry.shared_resources()
    names = {getattr(r, "name", None) for r in shared}
    assert "nfs.vnic" in names


def test_tuner_defaults_to_cluster_telemetry():
    platform, cluster = make()
    tuner = MapReduceTuner(cluster,
                           rules=[IncreaseSlotsWhenCpuIdleRule()])
    assert tuner.telemetry is cluster.telemetry
    assert tuner.analyser is cluster.telemetry.analyser
    for _ in range(3):
        cluster.telemetry.monitor.sample_now(platform.sim.now)
    recommendation = tuner.step()
    assert recommendation is not None and recommendation.kind == "reconfigure"


def test_tuner_with_legacy_analyser_warns_and_adopts():
    platform, cluster = make()
    with pytest.warns(DeprecationWarning):
        monitor = NmonMonitor(cluster.vms, interval=1.0)
    analyser = NmonAnalyser(monitor)
    with pytest.warns(DeprecationWarning, match="Telemetry"):
        tuner = MapReduceTuner(cluster, analyser,
                               rules=[IncreaseSlotsWhenCpuIdleRule()])
    # The facade adopted the legacy monitor: one sampling loop, one truth.
    assert cluster.telemetry.monitor is monitor
    assert tuner.analyser is analyser
    monitor.sample_now(platform.sim.now)
    # Adopted samples now feed the metrics registry too.
    assert cluster.telemetry.metrics.get(
        "vm.cpu.utilization", {"vm": cluster.vms[0].name}) is not None


def test_tuner_still_requires_rules():
    _platform, cluster = make()
    with pytest.raises(TunerError):
        MapReduceTuner(cluster, rules=[])
