"""Unit tests for the bounded ring-buffer time-series store."""

import math

import pytest

from repro.cloud.tenants import LatencyHistogram
from repro.errors import ConfigError
from repro.sim.kernel import Simulator
from repro.telemetry import MetricsRegistry
from repro.telemetry.timeseries import (TIER_MULTIPLIERS, HistogramSeries,
                                        TimeSeries, TimeSeriesStore)


def filled(n=40, step=1.0, capacity=10):
    series = TimeSeries("s", step=step, capacity=capacity)
    for i in range(n):
        series.observe(i * step, float(i))
    return series


# -- TimeSeries --------------------------------------------------------------

def test_ring_overwrites_and_bounds_memory():
    series = filled(n=40, capacity=10)
    raw = series.tiers[0].buckets()
    assert len(raw) == 10                       # capacity, not 40
    assert [b.index for b in raw] == list(range(30, 40))
    assert raw[0].last == 30.0 and raw[-1].last == 39.0


def test_coarse_tier_is_exact_merge_of_fine():
    series = filled(n=40, capacity=10)
    # x10 tier: bucket 3 covers samples 30..39 — count 10, sum 345.
    ten = {b.index: b for b in series.tiers[1].buckets()}
    assert ten[3].count == 10
    assert ten[3].total == sum(range(30, 40))
    assert ten[3].min == 30.0 and ten[3].max == 39.0
    # x100 tier: everything in one bucket.
    hundred = series.tiers[2].buckets()
    assert len(hundred) == 1 and hundred[0].count == 40


def test_rate_matches_raw_sample_differencing():
    series = TimeSeries("ctr", step=5.0)
    for i, value in enumerate((0.0, 3.0, 9.0, 10.0)):
        series.observe(i * 5.0, value)
    # (10 - 0) / (15 - 0): exact last-sample values, not bucket means.
    assert series.rate(0.0, 20.0) == (10.0 - 0.0) / 15.0
    assert series.rate(0.0, 4.9) == 0.0         # single bucket → no rate


def test_mean_over_is_sample_weighted():
    series = TimeSeries("g", step=1.0)
    series.observe(0.0, 1.0)
    series.observe(0.5, 3.0)                    # same bucket, two samples
    series.observe(1.0, 5.0)
    assert series.mean_over(0.0, 2.0) == (1.0 + 3.0 + 5.0) / 3.0
    assert series.mean_over(50.0, 60.0) == 0.0


def test_range_auto_picks_finest_retaining_tier():
    series = filled(n=200, step=1.0, capacity=10)
    # t0=195 is within raw retention (10 s from newest at 199).
    assert all(b.index >= 190
               for _, b in series.range(195.0, 200.0))
    # t0=120 fell off raw (10 s) but fits x10 (100 s).
    starts = [start for start, _ in series.range(120.0, 200.0)]
    assert starts and starts[0] % 10.0 == 0.0   # x10-width buckets
    # t0=-1e9 only fits the coarsest tier.
    assert series.range(-1e9, 200.0)


def test_digest_stable_and_content_sensitive():
    a, b = filled(), filled()
    assert a.digest() == b.digest()
    b.observe(40.0, 40.0)
    assert a.digest() != b.digest()


def test_validation():
    with pytest.raises(ConfigError):
        TimeSeries("bad", step=0.0)
    with pytest.raises(ConfigError):
        TimeSeries("bad", capacity=1)
    with pytest.raises(ConfigError):
        TimeSeriesStore(step=-1.0)


# -- HistogramSeries ---------------------------------------------------------

def delta(*values):
    hist = LatencyHistogram()
    for value in values:
        hist.observe(value)
    return hist


def test_quantile_over_time_merges_covered_buckets():
    series = HistogramSeries("lat", step=10.0)
    series.observe(0.0, delta(1.0, 1.0, 1.0))
    series.observe(10.0, delta(100.0, 100.0, 100.0))
    fast = series.quantile_over_time(0.99, 0.0, 10.0)
    slow = series.quantile_over_time(0.99, 0.0, 20.0)
    assert fast < 2.0                           # only the fast interval
    assert slow >= 100.0                        # merge includes the spike
    assert series.merged_over(0.0, 20.0).n == 6
    assert series.quantile_over_time(0.5, 500.0, 600.0) == 0.0


def test_histogram_series_digest_tracks_content():
    a = HistogramSeries("lat")
    b = HistogramSeries("lat")
    a.observe(0.0, delta(1.0))
    b.observe(0.0, delta(1.0))
    assert a.digest() == b.digest()
    b.observe(5.0, delta(9.0))
    assert a.digest() != b.digest()
    assert a.digest() != TimeSeries("lat").digest()


def test_empty_delta_is_ignored():
    series = HistogramSeries("lat")
    series.observe(0.0, LatencyHistogram())
    assert series.merged_over(0.0, 10.0).n == 0


# -- TimeSeriesStore ---------------------------------------------------------

def test_store_record_and_query_roundtrip():
    store = TimeSeriesStore(step=5.0)
    store.record("q", 2.0, at=0.0)
    store.record("q", 4.0, at=5.0)
    store.record("q", 4.0, labels={"vm": "a"}, at=5.0)
    assert store.mean_over("q", 0.0, 10.0) == 3.0
    assert store.mean_over("q", 0.0, 10.0, labels={"vm": "a"}) == 4.0
    assert store.rate("missing", 0.0, 10.0) == 0.0
    assert len(store) == 2
    assert store.get("q") is store.series("q")
    assert store.get("nope") is None


def test_store_digest_covers_every_series():
    a, b = TimeSeriesStore(), TimeSeriesStore()
    for s in (a, b):
        s.record("x", 1.0, at=0.0)
        s.record_histogram("h", delta(1.0), at=0.0)
    assert a.digest() == b.digest()
    b.record("y", 1.0, at=0.0)
    assert a.digest() != b.digest()


def test_registry_sampler_snapshots_counters_and_gauges():
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("jobs.done", "d", {"q": "a"})
    gauge = registry.gauge("util", "u")
    registry.histogram("skipped.hist", "h", buckets=(1.0,)).observe(0.5)
    store = TimeSeriesStore(sim, registry=registry, step=5.0)
    store.start()
    counter.inc(3)
    gauge.set(0.5)
    sim.run(until=12.0)                         # perpetual ticker: bound it
    store.stop()
    assert store.running is False
    series = store.get("jobs.done", {"q": "a"})
    assert series is not None and series.latest(1)[0].last == 3.0
    assert store.get("util").latest(1)[0].last == 0.5
    assert store.get("skipped.hist") is None    # histograms not sampled
    assert store.samples_taken > 0


def test_stopped_sampler_does_not_keep_sim_alive():
    sim = Simulator()
    store = TimeSeriesStore(sim, registry=MetricsRegistry(), step=5.0)
    store.start()
    store.stop()
    sim.run()                                   # returns: no parked timeout
    assert sim.now < 5.0


def test_start_requires_sim_and_registry():
    with pytest.raises(ConfigError):
        TimeSeriesStore().start()
    with pytest.raises(ConfigError):
        TimeSeriesStore(Simulator()).start()
    with pytest.raises(ConfigError):
        TimeSeriesStore().sample_registry()


def test_tier_multipliers_shape():
    assert TIER_MULTIPLIERS == (1, 10, 100)
    series = TimeSeries("s", step=2.0)
    assert [t.width for t in series.tiers] == [2.0, 20.0, 200.0]
    assert math.isclose(series.tiers[0].retention_s(), 720.0)
