"""Unit tests for the labelled metrics registry."""

import pytest

from repro.errors import ConfigError
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("jobs.done", "completed jobs")
    counter.inc()
    counter.inc(4.0)
    assert registry.value("jobs.done") == 5.0
    with pytest.raises(ConfigError):
        counter.inc(-1.0)


def test_gauge_set_inc_dec():
    gauge = Gauge()
    gauge.set(3.0)
    gauge.inc(2.0)
    gauge.dec(4.0)
    assert gauge.value == 1.0


def test_labels_create_independent_children():
    registry = MetricsRegistry()
    registry.counter("bytes", labels={"vm": "a"}).inc(10)
    registry.counter("bytes", labels={"vm": "b"}).inc(32)
    assert registry.value("bytes", {"vm": "a"}) == 10.0
    assert registry.value("bytes", {"vm": "b"}) == 32.0
    assert registry.value("bytes", {"vm": "c"}) == 0.0
    assert registry.sum("bytes") == 42.0
    assert registry.sum("bytes", "vm", "b") == 32.0


def test_label_order_is_irrelevant():
    registry = MetricsRegistry()
    registry.counter("m", labels={"a": "1", "b": "2"}).inc()
    assert registry.value("m", {"b": "2", "a": "1"}) == 1.0


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ConfigError):
        registry.gauge("x")


def test_histogram_statistics_and_buckets():
    histogram = Histogram(buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.total == pytest.approx(555.5)
    assert histogram.min == 0.5
    assert histogram.max == 500.0
    assert histogram.mean == pytest.approx(138.875)
    # One observation per bucket, one in +Inf.
    assert histogram.bucket_counts == [1, 1, 1, 1]
    assert histogram.quantile(0.0) <= histogram.quantile(1.0)


def test_registry_get_and_clear():
    registry = MetricsRegistry()
    registry.gauge("g").set(7.0)
    assert isinstance(registry.get("g"), Gauge)
    assert registry.get("missing") is None
    registry.clear()
    assert registry.get("g") is None


def test_counter_type():
    registry = MetricsRegistry()
    assert isinstance(registry.counter("c"), Counter)
