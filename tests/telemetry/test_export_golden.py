"""Golden-file exporter tests.

The fixtures are fully synthetic (hand-built spans, events and metrics),
so every byte of the rendered Chrome trace, Prometheus text and CSVs is
deterministic and pinned against the files in ``goldens/``.  This is what
keeps the exports stable across refactors — notably the Chrome-trace tid
assignment, which once used ``hash(str)`` and silently changed ids every
process (PYTHONHASHSEED salting).

To regenerate after an intentional format change::

    REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/telemetry/test_export_golden.py
"""

import json
import os
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

from repro.sim.trace import Tracer
from repro.telemetry import (MetricsRegistry, chrome_trace, events as EV,
                             metrics_csv, prometheus_text, spans_csv,
                             timeseries_csv, timeseries_json,
                             timeseries_prometheus)

GOLDENS = Path(__file__).parent / "goldens"
REPO_ROOT = Path(__file__).resolve().parents[2]


def golden(name: str, rendered: str) -> None:
    # Byte-level comparison: the CSVs carry \r\n row endings which text
    # mode would silently normalize away.
    path = GOLDENS / name
    if os.environ.get("REGEN_GOLDENS"):
        path.write_bytes(rendered.encode("utf-8"))
    expected = path.read_bytes().decode("utf-8")
    assert rendered == expected, (
        f"{name} drifted from its golden file — if the format change is "
        f"intentional, regenerate with REGEN_GOLDENS=1")


def fixture_tracer() -> Tracer:
    tracer = Tracer()
    job = tracer.begin_span(0.0, EV.JOB_RUN, "wc", n_reduces=2)
    maps = tracer.begin_span(0.5, EV.PHASE_MAP, "wc", parent=job)
    m0 = tracer.begin_span(1.0, EV.TASK_MAP, "m-00000", parent=maps,
                           tracker="vm01")
    tracer.end_span(m0, 4.0, input_bytes=1024)
    tracer.end_span(maps, 4.0)
    fetch = tracer.begin_span(4.0, EV.SHUFFLE_FETCH, "m-00000:r0",
                              parent=job, tracker="vm02", nbytes=512)
    tracer.end_span(fetch, 4.5)
    tracer.emit(5.0, EV.JOB_DONE, "wc", elapsed=5.0)
    tracer.end_span(job, 5.0)
    tracer.begin_span(2.0, EV.VM_BOOT, "vm-open")    # stays open
    return tracer


def fixture_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("mapreduce.tasks.speculated", "backup attempts",
                     {"phase": "map", "job": "wc"}).inc(3)
    registry.gauge("vm.cpu.utilization", "VCPU load fraction",
                   {"vm": "vm01"}).set(0.75)
    hist = registry.histogram("shuffle.partition.bytes",
                              "bytes per partition", {"job": "wc"},
                              buckets=(100.0, 1000.0))
    for value in (50, 150, 5000):
        hist.observe(value)
    # The escaping gauntlet: quotes, backslashes and newlines in label
    # values, a newline in help text.
    registry.counter("weird.labels", 'help with "quotes"\nand a newline',
                     {"path": 'C:\\tmp\\"in"\nout'}).inc()
    return registry


def fixture_store():
    """A small deterministic time-series store: wrapped ring, labels,
    a histogram series — every exporter code path."""
    from repro.cloud.tenants import LatencyHistogram
    from repro.telemetry import TimeSeriesStore

    store = TimeSeriesStore(step=5.0, capacity=4)
    for i in range(7):                           # 7 samples: the ring wraps
        store.record("service.backlog", float(i % 3), at=i * 5.0)
        store.record("pool.utilization", 0.5 + 0.05 * i,
                     labels={"pool": "workers"}, at=i * 5.0)
    hist = LatencyHistogram()
    for value in (0.5, 1.0, 2.0, 40.0):
        hist.observe(value)
    store.record_histogram("service.latency", hist, at=10.0)
    return store


def test_chrome_trace_matches_golden():
    trace = chrome_trace(fixture_tracer().spans, fixture_tracer().events)
    golden("chrome_trace.json",
           json.dumps(trace, indent=1, sort_keys=True) + "\n")


def test_chrome_trace_tids_are_crc32_stable():
    trace = chrome_trace(fixture_tracer().spans)
    rows = {r["name"]: r for r in trace["traceEvents"] if r["ph"] == "X"}
    task = rows[f"{EV.TASK_MAP}:m-00000"]
    assert task["tid"] == zlib.crc32(b"vm01") % 1_000_000
    assert task["pid"] == 3                      # the "task" category pid
    fetch = rows[f"{EV.SHUFFLE_FETCH}:m-00000:r0"]
    assert fetch["tid"] == zlib.crc32(b"vm02") % 1_000_000
    assert fetch["pid"] == 4                     # the "shuffle" category pid


def test_prometheus_text_matches_golden():
    golden("metrics.prom", prometheus_text(fixture_registry()))


def test_prometheus_escaping_round_trips():
    text = prometheus_text(fixture_registry())
    line = next(ln for ln in text.splitlines()
                if ln.startswith("weird_labels{"))
    assert '\n' not in line                     # newline escaped, not raw
    assert '\\"in\\"' in line and "\\\\tmp" in line and "\\n" in line
    help_line = next(ln for ln in text.splitlines()
                     if ln.startswith("# HELP weird_labels"))
    assert "\\nand" in help_line


def test_histogram_exposition_is_cumulative():
    text = prometheus_text(fixture_registry())
    buckets = [ln for ln in text.splitlines()
               if ln.startswith("shuffle_partition_bytes_bucket")]
    counts = [int(ln.rsplit(" ", 1)[1]) for ln in buckets]
    assert counts == [1, 2, 3]                  # cumulative, +Inf == count
    assert 'le="+Inf"' in buckets[-1]


def test_metrics_csv_matches_golden():
    golden("metrics.csv", metrics_csv(fixture_registry()))


def test_spans_csv_matches_golden():
    golden("spans.csv", spans_csv(fixture_tracer().spans))


def test_spans_csv_excludes_open_spans():
    text = spans_csv(fixture_tracer().spans)
    assert "vm-open" not in text


def test_timeseries_csv_matches_golden():
    golden("timeseries.csv", timeseries_csv(fixture_store()))


def test_timeseries_json_matches_golden():
    payload = timeseries_json(fixture_store())
    golden("timeseries.json",
           json.dumps(payload, indent=1, sort_keys=True) + "\n")


def test_timeseries_prometheus_matches_golden():
    golden("timeseries.prom", timeseries_prometheus(fixture_store()))


_DIGEST_SNIPPET = """
import hashlib, json, sys
sys.path.insert(0, {src!r}); sys.path.insert(0, {root!r})
from tests.telemetry.test_export_golden import fixture_store
from repro.telemetry import (timeseries_csv, timeseries_json,
                             timeseries_prometheus)
store = fixture_store()
print(store.digest())
for text in (timeseries_csv(store), timeseries_prometheus(store),
             json.dumps(timeseries_json(store), sort_keys=True)):
    print(hashlib.sha256(text.encode()).hexdigest()[:16])
"""


def test_digests_identical_across_fresh_salted_processes():
    """Two fresh interpreters with different PYTHONHASHSEEDs must agree
    on the store digest and every exporter byte — no dict/set iteration
    order anywhere in the pipeline."""
    snippet = _DIGEST_SNIPPET.format(src=str(REPO_ROOT / "src"),
                                     root=str(REPO_ROOT))
    outputs = []
    for seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        proc = subprocess.run([sys.executable, "-c", snippet],
                              capture_output=True, text=True, env=env,
                              check=True)
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    assert len(outputs[0].splitlines()) == 4    # digest + 3 exporter hashes


@pytest.mark.parametrize("name", ["chrome_trace.json", "metrics.prom",
                                  "metrics.csv", "spans.csv",
                                  "timeseries.csv", "timeseries.json",
                                  "timeseries.prom"])
def test_goldens_are_checked_in(name):
    assert (GOLDENS / name).is_file()
