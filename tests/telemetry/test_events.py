"""Taxonomy sanity: every registered kind categorizes, spans are disjoint
from point events, and migration/scheduler runs stay within the registry."""

from repro.config import PlatformConfig
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.telemetry import events as EV


def test_span_and_point_kinds_are_disjoint():
    assert not EV.SPAN_KINDS & EV.POINT_KINDS


def test_registered_kinds_include_span_edges():
    for kind in EV.SPAN_KINDS:
        assert f"{kind}.start" in EV.REGISTERED_KINDS
        assert f"{kind}.end" in EV.REGISTERED_KINDS


def test_every_span_kind_has_a_category():
    for kind in EV.SPAN_KINDS:
        assert EV.category_of(kind) == EV.SPAN_CATEGORIES[kind]


def test_category_fallback():
    assert EV.category_of("job.run.start") == "job"
    assert EV.category_of("completely.unknown") == "other"


def test_migration_run_emits_only_registered_kinds():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=3))
    cluster = platform.provision_cluster("ev", ClusterSpec.single_host(4),
                                         boot=True)
    dc = platform.datacenter
    vm = cluster.workers[0]
    destination = dc.machine(1 if vm.host is dc.machine(0) else 0)
    event = dc.migrator.migrate(vm, destination)
    dc.sim.run_until(event)
    emitted = {e.kind for e in platform.tracer.events}
    unregistered = emitted - EV.REGISTERED_KINDS
    assert not unregistered, f"unregistered event kinds: {unregistered}"
    assert EV.MIGRATION + ".end" in emitted
    assert EV.VM_BOOT + ".end" in emitted
