"""End-to-end span tests: a Wordcount run yields a coherent span tree,
its critical path accounts for the measured makespan, and every emitted
event kind is registered in the taxonomy."""

import json

import pytest

from repro.config import PlatformConfig
from repro.errors import MonitorError
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.telemetry import build_timeline, events as EV
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

LINES = ["alpha beta gamma delta epsilon"] * 300


@pytest.fixture(scope="module")
def run():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=9))
    cluster = platform.provision_cluster("spans", ClusterSpec.single_host(6),
                                         boot=True)
    platform.upload(cluster, "/in", lines_as_records(LINES),
                    sizeof=line_record_sizeof, timed=False)
    job = wordcount_job("/in", "/out", n_reduces=3)
    report = platform.run_job(cluster, job)
    return platform, cluster, job, report


def test_span_tree_links_job_phases_attempts(run):
    platform, cluster, job, _report = run
    timeline = cluster.telemetry.job_timeline(job.name)
    assert timeline.job_span.kind == EV.JOB_RUN
    phases = timeline.children_of(timeline.job_span)
    kinds = sorted(s.kind for s in phases)
    assert kinds == [EV.PHASE_MAP, EV.PHASE_REDUCE]
    map_phase = next(s for s in phases if s.kind == EV.PHASE_MAP)
    attempts = timeline.children_of(map_phase)
    assert attempts and all(a.kind == EV.TASK_MAP for a in attempts)
    reduce_phase = next(s for s in phases if s.kind == EV.PHASE_REDUCE)
    reducers = timeline.children_of(reduce_phase)
    assert len([r for r in reducers if r.kind == EV.TASK_REDUCE]) >= 3
    fetches = [s for s in timeline.spans if s.kind == EV.SHUFFLE_FETCH]
    assert fetches
    reducer_ids = {r.span_id for r in reducers}
    assert all(f.parent_id in reducer_ids for f in fetches)


def test_every_span_is_closed_and_ordered(run):
    platform, _cluster, _job, _report = run
    for span in platform.tracer.spans:
        assert not span.open
        assert span.end >= span.start


def test_span_layer_refines_event_log(run):
    platform, _cluster, job, _report = run
    assert platform.tracer.count(EV.JOB_RUN + ".start") == 1
    assert platform.tracer.count(EV.JOB_RUN + ".end") == 1
    starts = platform.tracer.count(EV.TASK_MAP + ".start")
    ends = platform.tracer.count(EV.TASK_MAP + ".end")
    assert starts == ends > 0


def test_all_emitted_kinds_are_registered(run):
    platform, _cluster, _job, _report = run
    emitted = {event.kind for event in platform.tracer.events}
    unregistered = emitted - EV.REGISTERED_KINDS
    assert not unregistered, f"unregistered event kinds: {unregistered}"


def test_critical_path_reproduces_makespan(run):
    _platform, cluster, job, report = run
    path = cluster.telemetry.critical_path(job.name)
    assert path.makespan == pytest.approx(report.elapsed, rel=0.01)
    assert path.work_s + path.wait_s == pytest.approx(path.makespan)
    assert 0.0 < path.coverage <= 1.0
    # Path segments are contiguous and inside the job window.
    segments = path.segments
    for before, after in zip(segments, segments[1:]):
        assert after.start == pytest.approx(before.end)
    assert path.span_segments(), "critical path found no contributing spans"


def test_chrome_trace_is_valid_json_with_four_categories(run):
    _platform, cluster, _job, _report = run
    text = json.dumps(cluster.telemetry.chrome_trace())
    trace = json.loads(text)
    rows = trace["traceEvents"]
    complete = [r for r in rows if r["ph"] == "X"]
    categories = {r["cat"] for r in complete}
    assert {"job", "task", "shuffle", "vm"} <= categories
    assert len(categories) >= 4
    for row in complete:
        assert row["dur"] >= 0
        assert isinstance(row["ts"], (int, float))
    assert any(r["ph"] == "M" for r in rows), "missing track metadata"


def test_timeline_requires_a_known_job(run):
    _platform, cluster, _job, _report = run
    with pytest.raises(MonitorError):
        cluster.telemetry.job_timeline("no-such-job")


def test_build_timeline_picks_latest_run(run):
    platform, cluster, job, _report = run
    rerun = wordcount_job("/in", "/out2", n_reduces=2)
    rerun.name = job.name
    platform.run_job(cluster, rerun)
    timeline = build_timeline(job.name, platform.tracer.spans)
    assert timeline.job_span.attrs["n_reduces"] == 2
