"""Exporter unit tests: Chrome trace, Prometheus text, CSV."""

import csv
import io
import json

from repro.sim.trace import Tracer
from repro.telemetry import (MetricsRegistry, chrome_trace, events as EV,
                             metrics_csv, prometheus_text, spans_csv,
                             write_chrome_trace)


def small_trace():
    tracer = Tracer()
    job = tracer.begin_span(0.0, EV.JOB_RUN, "wc")
    task = tracer.begin_span(1.0, EV.TASK_MAP, "m-0", parent=job,
                             tracker="vm-1")
    tracer.end_span(task, 3.0)
    fetch = tracer.begin_span(3.0, EV.SHUFFLE_FETCH, "m-0:r0", parent=job,
                              tracker="vm-2")
    tracer.end_span(fetch, 3.5)
    tracer.emit(4.0, EV.JOB_DONE, "wc", elapsed=4.0)
    tracer.end_span(job, 4.0)
    open_span = tracer.begin_span(2.0, EV.VM_BOOT, "vm-9")  # never ended
    assert open_span.open
    return tracer


def test_chrome_trace_rows_and_metadata():
    tracer = small_trace()
    trace = chrome_trace(tracer.spans, tracer.events)
    rows = trace["traceEvents"]
    complete = {r["name"]: r for r in rows if r["ph"] == "X"}
    # Only closed spans appear; names carry kind:name.
    assert f"{EV.JOB_RUN}:wc" in complete
    assert f"{EV.TASK_MAP}:m-0" in complete
    assert not any("vm.boot" in name for name in complete)
    task_row = complete[f"{EV.TASK_MAP}:m-0"]
    assert task_row["ts"] == 1.0e6 and task_row["dur"] == 2.0e6
    assert task_row["cat"] == "task"
    assert task_row["args"]["parent_id"] == 1
    # Span start/end events are folded into the X rows, not duplicated.
    instants = [r for r in rows if r["ph"] == "i"]
    assert [r["name"] for r in instants] == [EV.JOB_DONE]
    # The whole object is JSON-serializable.
    json.loads(json.dumps(trace))
    assert trace["displayTimeUnit"] == "ms"


def test_chrome_trace_skips_noisy_event_prefixes():
    tracer = Tracer()
    tracer.emit(0.0, EV.NET_TRANSFER_START, "flow", nbytes=1)
    tracer.emit(1.0, EV.NET_TRANSFER_END, "flow", nbytes=1)
    tracer.emit(2.0, EV.CLUSTER_PROVISIONED, "c")
    rows = chrome_trace([], tracer.events)["traceEvents"]
    names = [r["name"] for r in rows if r["ph"] == "i"]
    assert names == [EV.CLUSTER_PROVISIONED]


def test_write_chrome_trace_file(tmp_path):
    tracer = small_trace()
    path = tmp_path / "trace.json"
    returned = write_chrome_trace(str(path), tracer.spans, tracer.events)
    assert returned == str(path)
    with open(path, encoding="utf-8") as fh:
        assert json.load(fh)["traceEvents"]


def test_prometheus_text_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.counter("jobs.done", "completed", {"pool": "p0"}).inc(3)
    registry.gauge("slots.free").set(4)
    hist = registry.histogram("task.duration", "secs",
                              buckets=(1.0, 10.0))
    hist.observe(0.5)
    hist.observe(5.0)
    hist.observe(50.0)
    text = prometheus_text(registry)
    assert '# TYPE jobs_done counter' in text
    assert 'jobs_done{pool="p0"} 3.0' in text
    assert "slots_free 4" in text
    # Cumulative buckets: 1 ≤1.0, 2 ≤10.0, 3 total.
    assert 'task_duration_bucket{le="1.0"} 1' in text
    assert 'task_duration_bucket{le="10.0"} 2' in text
    assert 'task_duration_bucket{le="+Inf"} 3' in text
    assert "task_duration_count 3" in text
    assert "task_duration_sum 55.5" in text


def test_metrics_csv_shape():
    registry = MetricsRegistry()
    registry.counter("c", labels={"vm": "a"}).inc(2)
    registry.histogram("h").observe(1.0)
    rows = list(csv.DictReader(io.StringIO(metrics_csv(registry))))
    by_name = {r["metric"]: r for r in rows}
    assert by_name["c"]["value"] == "2.0"
    assert by_name["c"]["labels"] == "vm=a"
    assert by_name["h"]["count"] == "1"


def test_spans_csv_skips_open_spans():
    tracer = small_trace()
    rows = list(csv.DictReader(io.StringIO(spans_csv(tracer.spans))))
    kinds = {r["kind"] for r in rows}
    assert EV.VM_BOOT not in kinds
    assert EV.JOB_RUN in kinds
    job_row = next(r for r in rows if r["kind"] == EV.JOB_RUN)
    assert job_row["category"] == "job"
    assert float(job_row["duration"]) == 4.0
