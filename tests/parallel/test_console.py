"""Unit tests for the campaign sidecar stream and control room."""

import json

from repro.parallel.console import (CONSOLE_FORMAT, ConsoleTailer,
                                    ConsoleWriter, console_append,
                                    control_room_digest, control_room_html,
                                    tail_console, write_control_room)


def make_stream(path):
    writer = ConsoleWriter(str(path), worker_ref="mod:fn", total=4,
                           jobs=2, rss_limit_mb=256.0)
    writer.event("spawn", wid=0)
    writer.event("spawn", wid=1)
    writer.event("done", wid=0, key="a", ok=True, rss_mb=40.0)
    writer.event("done", wid=1, key="b", ok=False, rss_mb=52.5)
    writer.rss_sample({0: 41.0, 1: 53.0}, pending=2, min_interval_s=0.0)
    writer.event("kill", wid=1, reason="rss")
    writer.event("retire", wid=0, reason="tasks")
    writer.event("end", ok=3, failed=1, wall_s=1.5)
    return writer


def test_writer_tailer_roundtrip(tmp_path):
    path = tmp_path / "c.jsonl"
    make_stream(path)
    tailer = tail_console(str(path))
    assert tailer.header["format"] == CONSOLE_FORMAT
    assert tailer.total == 4 and tailer.rss_limit_mb == 256.0
    assert tailer.done == 2 and tailer.failed == 1
    assert tailer.kills == 1 and tailer.retires == 1
    assert tailer.workers[0].items == 1
    assert tailer.workers[0].state == "retired:tasks"
    assert tailer.workers[1].state == "killed:rss"
    assert tailer.workers[1].peak_rss_mb == 53.0
    assert tailer.workers[0].rss_history == [41.0]
    assert tailer.finished["ok"] == 3


def test_poll_is_incremental(tmp_path):
    path = tmp_path / "c.jsonl"
    writer = ConsoleWriter(str(path), worker_ref="w", total=2, jobs=1)
    tailer = ConsoleTailer(str(path))
    assert tailer.poll() == 1                   # just the header
    writer.event("done", wid=0, key="x", ok=True)
    assert tailer.poll() == 1
    assert tailer.poll() == 0                   # nothing new
    assert tailer.done == 1


def test_tailer_tolerates_torn_and_junk_lines(tmp_path):
    path = tmp_path / "c.jsonl"
    writer = ConsoleWriter(str(path), worker_ref="w", total=2, jobs=1)
    writer.event("done", wid=0, key="x", ok=True)
    with open(path, "a") as fh:
        fh.write("not json at all\n")
        fh.write('{"kind": "done", "wid": 0, "ok": true')   # torn, no \n
    tailer = tail_console(str(path))
    assert tailer.done == 1                     # junk skipped, tear buffered
    with open(path, "a") as fh:
        fh.write(', "t": 2.0}\n')               # the tear completes
    tailer.poll()
    assert tailer.done == 2


def test_second_header_resets_aggregates(tmp_path):
    path = tmp_path / "c.jsonl"
    make_stream(path)
    ConsoleWriter(str(path), worker_ref="w", total=9, jobs=1)  # rerun appends
    tailer = tail_console(str(path))
    assert tailer.total == 9
    assert tailer.done == 0 and not tailer.workers
    assert tailer.finished is None


def test_missing_file_polls_zero(tmp_path):
    tailer = ConsoleTailer(str(tmp_path / "absent.jsonl"))
    assert tailer.poll() == 0
    assert "campaign 0/?" in tailer.status_line()


def test_status_line_summarizes_fleet(tmp_path):
    path = tmp_path / "c.jsonl"
    make_stream(path)
    line = tail_console(str(path)).status_line()
    assert "campaign 2/4" in line
    assert "ok=1 fail=1" in line
    assert "kills=1 retires=1" in line


def test_appends_are_single_lines(tmp_path):
    path = tmp_path / "c.jsonl"
    console_append(str(path), {"kind": "x", "b": 1, "a": 2})
    raw = path.read_text()
    assert raw.endswith("\n") and raw.count("\n") == 1
    assert json.loads(raw) == {"kind": "x", "a": 2, "b": 1}
    assert raw.index('"a"') < raw.index('"b"')  # sort_keys: stable bytes


def test_control_room_digest_hashes_sim_content_only():
    a = control_room_digest("run1", "camp1", ["s1", "s2"])
    assert a == control_room_digest("run1", "camp1", ["s1", "s2"])
    assert a != control_room_digest("run2", "camp1", ["s1", "s2"])
    assert a != control_room_digest("run1", "camp1", ["s1"])
    assert len(a) == 16


def test_control_room_html_renders_sections(tmp_path):
    path = tmp_path / "c.jsonl"
    make_stream(path)
    tailer = tail_console(str(path))
    html = control_room_html(
        tailer, title="t<&>t", digest="abcd",
        notes=["note one"],
        series={"slo.error.backlog": [(0.0, 0.0), (5.0, 1.0)]})
    assert "Campaign control room" in html
    assert "t&lt;&amp;&gt;t" in html            # title is escaped
    assert "abcd" in html and "note one" in html
    assert "Per-worker RSS vs ceiling" in html
    assert "slo.error.backlog" in html
    assert "ceiling 256" in html
    out = write_control_room(str(tmp_path / "room.html"), tailer)
    assert (tmp_path / "room.html").read_text().startswith("<!DOCTYPE")
    assert out == str(tmp_path / "room.html")
