"""Fabric properties: the merge is deterministic, failures are recorded.

The load-bearing invariant is that :meth:`ShardedRun.digest` depends only
on the item keys and the workers' return values — never on job count,
completion interleaving, input order (the digest sorts by key), wall
clocks, or which worker ran what.  CI pins ``--jobs 1`` against
``--jobs N`` on exactly this digest.

All pooled tests use the ``fork`` start method: these workers live in a
test module, and fork inherits them without the import-by-reference
dance a spawned interpreter needs (the spawn path is exercised end to
end by the fuzz campaign CLI and the CI parallel-smoke job).
"""

import json
import time

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import ConfigError
from repro.parallel import call_guarded, run_sharded

_SLOW = dict(deadline=None,
             suppress_health_check=[HealthCheck.too_slow])


# -- module-level workers (fork-inherited into pool children) -----------------

def _square(n):
    return {"n": n, "sq": n * n}


def _fail_on_three(n):
    if n == 3:
        raise ValueError("three is right out")
    return n * 2


def _hang_on_one(n):
    if n == 1:
        time.sleep(60.0)
    return n


_FAIL_FLAG = {"fail": False}


def _conditional(n):
    if _FAIL_FLAG["fail"]:
        raise RuntimeError("flagged failure")
    return n


# -- serial reference path ----------------------------------------------------

class TestSerial:
    def test_results_follow_input_order(self):
        run = run_sharded([3, 1, 2], _square)
        assert [r.key for r in run.results] == ["3", "1", "2"]
        assert all(r.ok for r in run.results)
        assert run.results[0].value == {"n": 3, "sq": 9}
        assert run.n_ok == 3 and run.n_failed == 0

    def test_worker_exception_is_a_recorded_failure(self):
        run = run_sharded([2, 3, 4], _fail_on_three)
        assert run.n_failed == 1
        (failure,) = run.failures()
        assert failure.key == "3"
        assert "ValueError" in failure.error
        # Failures hash as a fixed token, so the digest stays stable.
        assert run.digest() == run_sharded([2, 3, 4], _fail_on_three).digest()

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigError, match="unique"):
            run_sharded([1, 1], _square)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigError, match="jobs"):
            run_sharded([1], _square, jobs=0)

    def test_custom_key_function(self):
        run = run_sharded([{"seed": 7}], _noop,
                          key=lambda item: f"seed-{item['seed']}")
        assert run.results[0].key == "seed-7"


def _noop(item):
    return None


# -- pooled execution ---------------------------------------------------------

class TestPool:
    def test_parallel_matches_serial_exactly(self):
        items = list(range(12))
        serial = run_sharded(items, _square)
        pooled = run_sharded(items, _square, jobs=3, mp_context="fork")
        assert pooled.digest() == serial.digest()
        assert ([(r.key, r.ok, r.value) for r in pooled.results]
                == [(r.key, r.ok, r.value) for r in serial.results])
        assert pooled.stats.workers_spawned >= 1

    def test_parallel_records_worker_exception(self):
        items = [2, 3, 4, 5]
        pooled = run_sharded(items, _fail_on_three, jobs=2,
                             mp_context="fork", chunk_size=1)
        assert pooled.n_failed == 1
        assert pooled.failures()[0].key == "3"
        assert pooled.digest() == run_sharded(items, _fail_on_three).digest()

    def test_timeout_kills_the_hung_item_only(self):
        run = run_sharded([0, 1, 2], _hang_on_one, jobs=2,
                          timeout_s=0.5, mp_context="fork", chunk_size=1)
        by_key = {r.key: r for r in run.results}
        assert not by_key["1"].ok and "timeout" in by_key["1"].error
        assert by_key["0"].ok and by_key["2"].ok
        assert run.stats.timeouts >= 1

    def test_tasks_per_worker_forces_fresh_processes(self):
        run = run_sharded(list(range(4)), _square, jobs=1,
                          tasks_per_worker=1, mp_context="fork")
        assert run.n_ok == 4
        assert run.stats.retirements == 4
        assert run.stats.workers_spawned == 4
        assert run.digest() == run_sharded(list(range(4)), _square).digest()

    def test_digest_ignores_nondeterministic_fields(self):
        a = run_sharded([1, 2], _square)
        b = run_sharded([1, 2], _square, jobs=2, mp_context="fork")
        # Wall clocks and worker ids differ; the digest must not.
        assert a.results[0].wall_s != b.results[0].wall_s or True
        assert a.digest() == b.digest()


# -- the ISSUE-mandated merge-determinism property ----------------------------

_REF_ITEMS = list(range(10))
_REFERENCE = run_sharded(_REF_ITEMS, _square)


@given(perm=st.permutations(_REF_ITEMS), jobs=st.sampled_from([1, 2, 4]))
@settings(max_examples=10, **_SLOW)
def test_merge_is_independent_of_order_and_job_count(perm, jobs):
    """Shuffled items x 1/2/4 workers: digests and per-item results match
    the serial reference byte for byte."""
    run = run_sharded(perm, _square, jobs=jobs, mp_context="fork")
    assert run.digest() == _REFERENCE.digest()
    assert [(r.key, r.ok, r.value) for r in run.results] == [
        (str(n), True, {"n": n, "sq": n * n}) for n in perm]


# -- journal checkpoint/resume ------------------------------------------------

class TestJournal:
    def test_resume_reuses_completed_items(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        first = run_sharded([1, 2, 3], _square, journal=journal)
        assert first.n_resumed == 0
        second = run_sharded([1, 2, 3], _square, journal=journal)
        assert second.n_resumed == 3
        assert second.digest() == first.digest()

    def test_failed_entries_are_retried(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        _FAIL_FLAG["fail"] = True
        try:
            first = run_sharded([1], _conditional, journal=journal)
        finally:
            _FAIL_FLAG["fail"] = False
        assert first.n_failed == 1
        second = run_sharded([1], _conditional, journal=journal)
        assert second.n_resumed == 0 and second.n_ok == 1

    def test_different_item_set_rejected(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        run_sharded([1, 2, 3], _square, journal=journal)
        with pytest.raises(ConfigError, match="different campaign"):
            run_sharded([1, 2, 4], _square, journal=journal)

    def test_different_worker_rejected(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        run_sharded([1], _square, journal=journal)
        with pytest.raises(ConfigError, match="different campaign"):
            run_sharded([1], _noop, journal=journal)

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        run_sharded([1, 2, 3], _square, journal=journal)
        with journal.open("a") as fh:
            fh.write('{"key": "2", "ok": true, "val')  # killed mid-append
        resumed = run_sharded([1, 2, 3], _square, journal=journal)
        assert resumed.n_resumed == 3

    def test_journal_lines_are_valid_jsonl_with_header(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        run_sharded([1, 2], _square, journal=journal)
        lines = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        assert lines[0]["kind"] == "header" and lines[0]["total"] == 2
        assert {e["key"] for e in lines[1:]} == {"1", "2"}


# -- the single-call guard ----------------------------------------------------

class TestCallGuarded:
    def test_ok_round_trip(self):
        result = call_guarded(_square, 4, timeout_s=30.0, mp_context="fork")
        assert result.ok and result.value == {"n": 4, "sq": 16}
        assert not result.timed_out

    def test_timeout_kills_the_child(self):
        t0 = time.monotonic()
        result = call_guarded(_hang_on_one, 1, timeout_s=0.3,
                              mp_context="fork")
        assert not result.ok and result.timed_out
        assert time.monotonic() - t0 < 30.0  # killed, not waited out

    def test_worker_exception_reported(self):
        result = call_guarded(_fail_on_three, 3, timeout_s=30.0,
                              mp_context="fork")
        assert not result.ok and not result.timed_out
        assert "ValueError" in result.error
