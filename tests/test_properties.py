"""Property-based tests (hypothesis) on the core invariants.

* fair-share: work conservation, completion, cap respect;
* MapReduce: cluster output == local reference for arbitrary jobs/data;
* group/partition algebra: no pair lost, partitions disjoint;
* determinism: same seed => same simulated timings.
"""

import collections

import numpy as np
import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.config import PlatformConfig
from repro.mapreduce import LocalJobRunner, stable_hash
from repro.mapreduce.api import HashPartitioner, group_by_key
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.sim import FairShareSystem, SharedResource, Simulator
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

_SLOW = dict(deadline=None,
             suppress_health_check=[HealthCheck.too_slow,
                                    HealthCheck.data_too_large])


# --- fair-share properties ----------------------------------------------------

@settings(max_examples=40, **_SLOW)
@given(st.lists(st.floats(1.0, 1e4), min_size=1, max_size=12),
       st.floats(1.0, 1e3))
def test_fairshare_all_flows_complete_and_conserve(sizes, capacity):
    sim = Simulator()
    fss = FairShareSystem(sim)
    link = SharedResource("link", capacity)
    flows = [fss.open([link], size=s) for s in sizes]
    sim.run()
    assert all(f.end_time is not None for f in flows)
    # Single saturated link, all flows start together: finish time of the
    # last flow equals total work / capacity (work conservation).
    assert max(f.end_time for f in flows) == pytest.approx(
        sum(sizes) / capacity, rel=1e-6)


@settings(max_examples=40, **_SLOW)
@given(st.lists(st.tuples(st.floats(1.0, 1e4), st.floats(0.1, 50.0)),
                min_size=1, max_size=10))
def test_fairshare_caps_never_exceeded(flows_spec):
    sim = Simulator()
    fss = FairShareSystem(sim)
    link = SharedResource("link", 100.0)
    flows = [fss.open([link], size=s, cap=c) for s, c in flows_spec]
    # After the initial rebalance, every rate respects its cap and the link.
    assert sum(f.rate for f in flows) <= 100.0 + 1e-6
    for flow, (_s, cap) in zip(flows, flows_spec):
        assert flow.rate <= cap + 1e-9
    sim.run()
    for flow, (size, cap) in zip(flows, flows_spec):
        # A capped flow can never finish faster than size/cap.
        assert flow.end_time >= size / cap - 1e-6


@settings(max_examples=30, **_SLOW)
@given(st.lists(st.floats(1.0, 1e3), min_size=2, max_size=8))
def test_fairshare_equal_flows_finish_together(sizes):
    sim = Simulator()
    fss = FairShareSystem(sim)
    link = SharedResource("link", 10.0)
    size = sizes[0]
    flows = [fss.open([link], size=size) for _ in sizes]
    sim.run()
    ends = {round(f.end_time, 9) for f in flows}
    assert len(ends) == 1


# --- grouping / partitioning algebra ----------------------------------------------

@settings(max_examples=60, **_SLOW)
@given(st.lists(st.tuples(st.text(max_size=6), st.integers(-5, 5)),
                max_size=60))
def test_group_by_key_loses_nothing(pairs):
    grouped = group_by_key(pairs)
    regenerated = [(k, v) for k, values in grouped for v in values]
    assert collections.Counter(regenerated) == collections.Counter(pairs)
    keys = [k for k, _ in grouped]
    assert len(keys) == len(set(keys))


@settings(max_examples=60, **_SLOW)
@given(st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=50),
       st.integers(1, 9))
def test_hash_partitioner_total_and_disjoint(keys, n):
    p = HashPartitioner()
    partitions = [p.partition(k, n) for k in keys]
    assert all(0 <= i < n for i in partitions)
    # Deterministic: same key always lands in the same partition.
    assert partitions == [p.partition(k, n) for k in keys]


@settings(max_examples=100, **_SLOW)
@given(st.one_of(st.text(), st.integers(), st.binary(),
                 st.tuples(st.integers(), st.text())))
def test_stable_hash_stable(value):
    assert stable_hash(value) == stable_hash(value)
    assert stable_hash(value) >= 0


# --- functional equivalence: cluster == local -----------------------------------

@settings(max_examples=10, **_SLOW)
@given(st.lists(st.text(alphabet="abcd ", min_size=1, max_size=30),
                min_size=1, max_size=30),
       st.integers(1, 5))
def test_cluster_wordcount_equals_local(lines, n_reduces):
    records = lines_as_records(lines)
    job = wordcount_job("/in", "/out", n_reduces=n_reduces)
    local = sorted(LocalJobRunner().run(job, records))

    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=0))
    cluster = platform.provision_cluster("p", ClusterSpec.single_host(5))
    platform.upload(cluster, "/in", records, sizeof=line_record_sizeof,
                    timed=False)
    report = platform.run_job(cluster, job)
    assert sorted(platform.collect(cluster, report)) == local


# --- determinism -----------------------------------------------------------------

def _run_once(seed):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster("d", ClusterSpec.single_host(8))
    lines = ["alpha beta gamma delta"] * 500
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=lambda r: (len(r[1]) + 1) * 100, timed=False)
    report = platform.run_job(
        cluster, wordcount_job("/in", "/out", n_reduces=3, volume_scale=100))
    return report.elapsed


def test_same_seed_same_timing():
    assert _run_once(7) == _run_once(7)


def test_different_seed_different_timing():
    assert _run_once(7) != _run_once(8)


# --- dataset properties -------------------------------------------------------------

@settings(max_examples=10, **_SLOW)
@given(st.integers(1, 20), st.integers(10, 80))
def test_control_chart_values_bounded(n_per_class, length):
    from repro.datasets import generate_synthetic_control
    X, labels = generate_synthetic_control(
        n_per_class=n_per_class, length=length,
        rng=np.random.default_rng(0))
    assert X.shape == (6 * n_per_class, length)
    # All formulas stay within a loose physical envelope.
    assert np.isfinite(X).all()
    assert X.min() > 30 - 6 - 20 - 0.5 * length - 15 - 1
    assert X.max() < 30 + 6 + 20 + 0.5 * length + 15 + 1
