"""Unit tests for the network topology and transfer paths."""


import pytest

from repro import constants as C
from repro.errors import SimulationError
from repro.net import NetworkFabric
from repro.sim import FairShareSystem, Simulator, Tracer


@pytest.fixture()
def fabric():
    sim = Simulator()
    fss = FairShareSystem(sim)
    return sim, NetworkFabric(sim, fss, tracer=Tracer())


def build_two_hosts(fabric):
    h0 = fabric.add_host("h0")
    h1 = fabric.add_host("h1")
    a = fabric.attach("a", h0)
    b = fabric.attach("b", h0)
    c = fabric.attach("c", h1)
    return h0, h1, a, b, c


def test_duplicate_host_and_endpoint_rejected(fabric):
    sim, fab = fabric
    fab.add_host("h0")
    with pytest.raises(SimulationError):
        fab.add_host("h0")
    host = fab.hosts["h0"]
    fab.attach("x", host)
    with pytest.raises(SimulationError):
        fab.attach("x", host)


def test_loopback_path_is_free(fabric):
    sim, fab = fabric
    _h0, _h1, a, _b, _c = build_two_hosts(fab)
    path, latency = fab.path(a, a)
    assert len(path) == 0 and latency == 0.0


def test_same_host_path_uses_bridge(fabric):
    sim, fab = fabric
    h0, _h1, a, b, _c = build_two_hosts(fab)
    path, latency = fab.path(a, b)
    assert h0.bridge in path
    assert h0.nic not in path
    assert h0.netback not in path
    assert latency == C.BRIDGE_LATENCY_S


def test_cross_host_path_pays_netback_and_nics(fabric):
    sim, fab = fabric
    h0, h1, a, _b, c = build_two_hosts(fab)
    path, latency = fab.path(a, c)
    assert h0.nic in path and h1.nic in path
    assert h0.netback in path and h1.netback in path
    assert latency == C.LAN_LATENCY_S
    assert fab.crosses_physical_nic(a, c)
    assert not fab.crosses_physical_nic(a, a)


def test_privileged_endpoints_skip_netback(fabric):
    sim, fab = fabric
    h0, h1, a, _b, _c = build_two_hosts(fab)
    dom0 = fab.attach("h1.dom0", h1, privileged=True)
    path, _lat = fab.path(dom0, a)
    assert h1.netback not in path  # source is privileged
    assert h0.netback in path      # guest destination still pays


def test_transfer_time_matches_bottleneck(fabric):
    sim, fab = fabric
    _h0, _h1, a, _b, c = build_two_hosts(fab)
    done = fab.transfer(a, c, C.XEN_NETBACK_BPS)  # 1 s at the netback
    sim.run()
    assert done.value == pytest.approx(1.0 + C.LAN_LATENCY_S, rel=1e-3)
    assert a.tx_bytes == C.XEN_NETBACK_BPS
    assert c.rx_bytes == C.XEN_NETBACK_BPS


def test_bridge_transfer_faster_than_cross_host(fabric):
    sim, fab = fabric
    _h0, _h1, a, b, c = build_two_hosts(fab)
    nbytes = 100 * C.MB
    local = fab.transfer(a, b, nbytes)
    sim.run()
    remote = fab.transfer(a, c, nbytes)
    sim.run()
    assert remote.value > 5 * local.value


def test_negative_transfer_rejected(fabric):
    sim, fab = fabric
    _h0, _h1, a, _b, c = build_two_hosts(fab)
    with pytest.raises(SimulationError):
        fab.transfer(a, c, -1)


def test_zero_byte_transfer_costs_latency_only(fabric):
    sim, fab = fabric
    _h0, _h1, a, _b, c = build_two_hosts(fab)
    done = fab.transfer(a, c, 0)
    sim.run()
    assert done.value == pytest.approx(C.LAN_LATENCY_S)


def test_open_stream_and_close(fabric):
    sim, fab = fabric
    _h0, _h1, a, _b, c = build_two_hosts(fab)
    stream = fab.open_stream(a, c)
    assert stream is not None
    sim.run(until=2.0)
    moved = fab.close_stream(stream)
    assert moved == pytest.approx(2.0 * C.XEN_NETBACK_BPS, rel=1e-3)
    # Loopback stream is a no-op.
    assert fab.open_stream(a, a) is None
    assert fab.close_stream(None) == 0.0


def test_move_rehomes_endpoint(fabric):
    sim, fab = fabric
    h0, h1, a, _b, c = build_two_hosts(fab)
    before, _lat = fab.path(a, c)  # prime the route cache
    assert h0.nic in before
    fab.move(a, h1)
    path, _lat = fab.path(a, c)
    assert h1.bridge in path  # now co-located with c: cache was dropped


def test_transfers_emit_trace(fabric):
    sim, fab = fabric
    _h0, _h1, a, _b, c = build_two_hosts(fab)
    fab.transfer(a, c, 1000, name="probe")
    sim.run()
    start = next(fab.tracer.select("net.transfer.start"))
    assert start["cross_domain"] is True
    end = fab.tracer.last("net.transfer.end")
    assert end["bytes"] == 1000
