"""Rack tier: ToR/aggregation paths and the bounded LRU route cache."""

import pytest

from repro import constants as C
from repro.net import NetworkFabric
from repro.sim import FairShareSystem, Simulator, Tracer


@pytest.fixture()
def fabric():
    sim = Simulator()
    fss = FairShareSystem(sim)
    return sim, NetworkFabric(sim, fss, tracer=Tracer())


def build_racked(fab, racks=2, hosts_per_rack=2, tor_bandwidth=C.TOR_SWITCH_BPS):
    fab.set_aggregation(C.AGG_UPLINK_BPS)
    endpoints = []
    for r in range(racks):
        rack = fab.add_rack(f"rack{r}", tor_bandwidth=tor_bandwidth)
        for h in range(hosts_per_rack):
            host = fab.add_host(f"r{r}h{h}", rack=rack)
            endpoints.append(fab.attach(f"vm-r{r}h{h}", host))
    return endpoints


def test_same_rack_path_crosses_tor_not_agg(fabric):
    _sim, fab = fabric
    a, b, _c, _d = build_racked(fab)
    path, latency = fab.path(a, b)
    tor = fab.racks["rack0"].tor
    assert tor in path
    assert fab.agg not in path
    assert latency == C.LAN_LATENCY_S
    assert not fab.crosses_rack(a, b)


def test_inter_rack_path_crosses_both_tors_and_agg(fabric):
    _sim, fab = fabric
    a, _b, c, _d = build_racked(fab)
    path, latency = fab.path(a, c)
    assert fab.racks["rack0"].tor in path
    assert fab.racks["rack1"].tor in path
    assert fab.agg in path
    # ToRs sit between the NICs, source side before destination side.
    assert (path.index(fab.racks["rack0"].tor)
            < path.index(fab.agg)
            < path.index(fab.racks["rack1"].tor))
    assert latency == C.LAN_LATENCY_S + C.AGG_LATENCY_S
    assert fab.crosses_rack(a, c)


def test_one_rack_degenerate_matches_flat_paths(fabric):
    """tor=None racks add no resources: the flat path shape is preserved."""
    _sim, fab = fabric
    rack = fab.add_rack("rack0", tor_bandwidth=None)
    h0 = fab.add_host("h0", rack=rack)
    h1 = fab.add_host("h1", rack=rack)
    a = fab.attach("a", h0)
    c = fab.attach("c", h1)
    path, latency = fab.path(a, c)
    assert path == (a.vnic, h0.netback, h0.nic, h1.nic, h1.netback, c.vnic)
    assert latency == C.LAN_LATENCY_S
    assert fab.agg is None
    assert not fab.crosses_rack(a, c)


def test_inter_rack_transfer_bottlenecked_by_agg(fabric):
    sim, fab = fabric
    a, b, c, _d = build_racked(fab)
    intra = fab.transfer(a, b, 100 * C.MB)
    sim.run()
    inter = fab.transfer(a, c, 100 * C.MB)
    sim.run()
    # The aggregation uplink is the slowest tier, so crossing racks is
    # strictly slower than staying behind one ToR.
    assert inter.value > intra.value


# --- LRU route cache --------------------------------------------------------

def test_path_cache_hit_miss_counters(fabric):
    _sim, fab = fabric
    a, b, c, _d = build_racked(fab)
    assert fab.path_cache_stats()["misses"] == 0
    fab.path(a, b)
    fab.path(a, b)
    fab.path(a, c)
    stats = fab.path_cache_stats()
    assert stats["misses"] == 2
    assert stats["hits"] == 1
    assert stats["size"] == 2


def test_path_cache_evicts_lru_at_capacity(fabric):
    _sim, fab = fabric
    a, b, c, d = build_racked(fab)
    fab.path_cache_capacity = 2
    fab.path(a, b)          # cache: ab
    fab.path(a, c)          # cache: ab, ac
    fab.path(a, b)          # touch ab -> ac is now LRU
    fab.path(a, d)          # evicts ac
    assert fab.path_cache_evictions == 1
    assert (a, c) not in fab._path_cache
    assert (a, b) in fab._path_cache
    # Evicted routes recompute correctly.
    path, _lat = fab.path(a, c)
    assert fab.agg in path


def test_path_cache_bounded_under_many_pairs(fabric):
    _sim, fab = fabric
    fab.path_cache_capacity = 8
    endpoints = build_racked(fab, racks=2, hosts_per_rack=3)
    for src in endpoints:
        for dst in endpoints:
            if src is not dst:
                fab.path(src, dst)
    assert len(fab._path_cache) <= 8


def test_move_invalidates_cached_routes(fabric):
    """Regression: VM migration must drop stale cached paths."""
    _sim, fab = fabric
    a, _b, c, _d = build_racked(fab)
    before, _lat = fab.path(a, c)
    assert fab.agg in before            # racks differ: via aggregation
    fab.move(a, c.host)
    after, latency = fab.path(a, c)
    assert fab.agg not in after          # co-located: bridge only
    assert c.host.bridge in after
    assert latency == C.BRIDGE_LATENCY_S
