"""Tenant fleet, quotas and the log-binned latency histogram."""

import pytest

from repro.cloud import LatencyHistogram, TenantRegistry, TenantSpec
from repro.cloud.tenants import PRIORITIES
from repro.errors import ConfigError
from repro.scheduler.report import percentile
from repro.sim.rng import RngRegistry


def test_spec_validation_and_ranks():
    with pytest.raises(ConfigError):
        TenantSpec(name="t", priority="platinum")
    with pytest.raises(ConfigError):
        TenantSpec(name="t", weight=0.0)
    with pytest.raises(ConfigError):
        TenantSpec(name="t", quota_inflight=0)
    ranks = [TenantSpec(name="t", priority=p).priority_rank
             for p in PRIORITIES]
    assert ranks == [0, 1, 2]  # interactive most important


def test_synthetic_fleet_is_deterministic():
    a = TenantRegistry.synthetic(40, RngRegistry(11).stream("fleet"))
    b = TenantRegistry.synthetic(40, RngRegistry(11).stream("fleet"))
    assert a.names == b.names
    for name in a.names:
        assert a.spec(name) == b.spec(name)
    c = TenantRegistry.synthetic(40, RngRegistry(12).stream("fleet"))
    assert any(a.spec(n).priority != c.spec(n).priority for n in a.names)


def test_synthetic_fleet_shape():
    fleet = TenantRegistry.synthetic(60, RngRegistry(0).stream("fleet"),
                                     quota_scale=100.0)
    specs = list(fleet)
    # Zipf-ish: first tenant heaviest, weights strictly decreasing.
    weights = [s.weight for s in specs]
    assert weights == sorted(weights, reverse=True)
    assert weights[0] == 1.0
    # Quotas follow weight but keep the flat noise headroom.
    assert specs[0].quota_inflight > specs[-1].quota_inflight
    assert specs[-1].quota_inflight >= 2
    # All three priority classes occur in a 60-tenant fleet.
    assert {s.priority for s in specs} == set(PRIORITIES)


def test_registry_accounting_roundtrip():
    fleet = TenantRegistry.synthetic(5, RngRegistry(3).stream("fleet"))
    name = fleet.names[0]
    stats = fleet.stats(name)
    stats.submitted += 3
    stats.admitted += 2
    stats.completed += 2
    stats.latency.observe(10.0)
    stats.latency.observe(20.0)
    assert fleet.stats(name) is stats  # one stats object per tenant
    d = stats.as_dict()
    assert d["submitted"] == 3 and d["completed"] == 2
    assert name in fleet and len(fleet) == 5


def test_histogram_quantiles_track_exact_percentiles():
    hist = LatencyHistogram()
    # Stay inside the default [0.1, 1e5) range so nothing overflows.
    samples = [0.5 * 1.05 ** i for i in range(200)]
    for s in samples:
        hist.observe(s)
    for q in (0.5, 0.9, 0.99):
        exact = percentile(samples, q)
        approx = hist.quantile(q)
        # Bin upper edge: over-estimates by at most one bin's growth.
        assert exact <= approx <= exact * 1.12


def test_histogram_edges_and_overflow():
    hist = LatencyHistogram(lo=1.0, hi=100.0, n_bins=8)
    hist.observe(0.0)           # clamps into the first bin
    hist.observe(1e6)           # overflow bin reports the exact max
    assert hist.quantile(0.0) > 0.0
    assert hist.quantile(1.0) == 1e6
    assert hist.max_seen == 1e6
    assert hist.n == 2
    with pytest.raises(ConfigError):
        hist.observe(-1.0)
    assert LatencyHistogram().quantile(0.5) == 0.0  # empty -> 0


def test_histogram_merge_equals_union():
    a, b, union = (LatencyHistogram() for _ in range(3))
    for i, v in enumerate(x * 7.3 + 0.2 for x in range(300)):
        (a if i % 2 else b).observe(v)
        union.observe(v)
    a.merge(b)
    assert a.n == union.n
    assert a.counts == union.counts
    assert a.quantile(0.99) == union.quantile(0.99)
    with pytest.raises(ConfigError):
        a.merge(LatencyHistogram(n_bins=16))


def test_histogram_order_independent():
    forward, backward = LatencyHistogram(), LatencyHistogram()
    values = [2.0 ** i for i in range(20)]
    for v in values:
        forward.observe(v)
    for v in reversed(values):
        backward.observe(v)
    assert forward.counts == backward.counts
    assert forward.quantile(0.5) == backward.quantile(0.5)
