"""Determinism and shape of the open-loop arrival generators."""

import pytest

from repro.cloud import (BurstTraffic, DiurnalTraffic, PoissonTraffic,
                         TenantRegistry, TraceReplay, trace_digest)
from repro.cloud.traffic import JOB_CLASSES, mean_job_size_mb
from repro.errors import ConfigError
from repro.sim.rng import RngRegistry


def fleet(seed=3, n=10):
    return TenantRegistry.synthetic(n, RngRegistry(seed).stream("fleet"))


def test_same_seed_same_trace_digest():
    a = PoissonTraffic("p", fleet(), RngRegistry(7).stream("t"), 2.0)
    b = PoissonTraffic("p", fleet(), RngRegistry(7).stream("t"), 2.0)
    ta, tb = a.materialize(500.0), b.materialize(500.0)
    assert [x.line() for x in ta] == [x.line() for x in tb]
    assert trace_digest(ta) == trace_digest(tb)


def test_different_seed_different_trace():
    a = PoissonTraffic("p", fleet(), RngRegistry(7).stream("t"), 2.0)
    b = PoissonTraffic("p", fleet(), RngRegistry(8).stream("t"), 2.0)
    assert trace_digest(a.materialize(500.0)) != \
        trace_digest(b.materialize(500.0))


def test_arrivals_sorted_decorated_and_bounded():
    arrivals = PoissonTraffic("p", fleet(), RngRegistry(0).stream("t"),
                              5.0).materialize(200.0)
    assert len(arrivals) > 500
    assert all(0 <= a.at < 200.0 for a in arrivals)
    assert arrivals == sorted(arrivals, key=lambda a: a.at)
    classes = {a.job_class for a in arrivals}
    assert classes == {name for name, *_ in JOB_CLASSES}
    for a in arrivals:
        lo = min(lo for _, lo, _, _ in JOB_CLASSES)
        hi = max(hi for _, _, hi, _ in JOB_CLASSES)
        assert lo <= a.size_mb <= hi
    # Request ids are unique and stable in format.
    ids = [a.request_id for a in arrivals]
    assert len(set(ids)) == len(ids)
    assert ids[0] == "p-00000000"


def test_poisson_rate_is_roughly_honoured():
    arrivals = PoissonTraffic("p", fleet(), RngRegistry(1).stream("t"),
                              4.0).materialize(2000.0)
    assert 4.0 * 2000 * 0.9 < len(arrivals) < 4.0 * 2000 * 1.1


def test_burst_windows_multiply_the_rate():
    traffic = BurstTraffic("b", fleet(), RngRegistry(2).stream("t"),
                           base_rate_per_s=2.0, burst_factor=5.0,
                           burst_every_s=1000.0, burst_duration_s=200.0)
    assert not traffic.in_burst(500.0)
    assert traffic.in_burst(1100.0)
    assert traffic.rate_at(500.0) == 2.0
    assert traffic.rate_at(1100.0) == 10.0
    arrivals = traffic.materialize(2000.0)
    in_burst = sum(1 for a in arrivals if traffic.in_burst(a.at))
    outside = len(arrivals) - in_burst
    # 200s at 10/s vs 1800s at 2/s: the burst density is ~5x the base.
    assert in_burst / 200.0 > 3.0 * (outside / 1800.0)


def test_diurnal_peaks_and_troughs():
    traffic = DiurnalTraffic("d", fleet(), RngRegistry(4).stream("t"),
                             base_rate_per_s=4.0, amplitude=0.8,
                             period_s=4000.0)
    arrivals = traffic.materialize(4000.0)
    # First half-period is the peak (sin > 0), second the trough.
    peak = sum(1 for a in arrivals if a.at < 2000.0)
    trough = len(arrivals) - peak
    assert peak > 1.5 * trough


def test_trace_replay_is_verbatim_and_digest_stable():
    tenants = fleet()
    original = PoissonTraffic("p", tenants, RngRegistry(5).stream("t"),
                              3.0).materialize(300.0)
    replay = TraceReplay("r", tenants, RngRegistry(99).stream("x"),
                         original)
    assert replay.materialize(300.0) == original
    assert trace_digest(replay.materialize(300.0)) == \
        trace_digest(original)
    # Horizon truncates the replay.
    assert all(a.at < 100.0 for a in replay.materialize(100.0))


def test_trace_replay_rejects_unknown_tenants():
    original = PoissonTraffic("p", fleet(n=10), RngRegistry(5).stream("t"),
                              3.0).materialize(100.0)
    with pytest.raises(ConfigError):
        TraceReplay("r", fleet(n=1), RngRegistry(0).stream("x"), original)


def test_mean_job_size_matches_the_mix():
    # Log-uniform mean per class: (hi-lo)/ln(hi/lo), mixed by probability.
    mean = mean_job_size_mb()
    assert 400.0 < mean < 600.0
    empirical = PoissonTraffic("p", fleet(), RngRegistry(6).stream("t"),
                               10.0).materialize(5000.0)
    observed = sum(a.size_mb for a in empirical) / len(empirical)
    assert abs(observed - mean) / mean < 0.25


def test_traffic_validation():
    tenants = fleet()
    rng = RngRegistry(0).stream("t")
    with pytest.raises(ConfigError):
        PoissonTraffic("p", tenants, rng, rate_per_s=0.0)
    with pytest.raises(ConfigError):
        DiurnalTraffic("d", tenants, rng, base_rate_per_s=1.0,
                       amplitude=1.5)
    with pytest.raises(ConfigError):
        BurstTraffic("b", tenants, rng, base_rate_per_s=1.0,
                     burst_duration_s=500.0, burst_every_s=100.0)
    with pytest.raises(ConfigError):
        PoissonTraffic("p", tenants, rng, 1.0).materialize(0.0)
