"""Quota, graded load shedding and the aging FIFO capacity gate."""

from dataclasses import dataclass, field

import pytest

from repro.cloud import (ADMIT, REJECT_OVERLOAD, REJECT_QUOTA,
                         AdmissionController, AdmissionDecision,
                         AgingFifoGate, TenantSpec, TenantStats)
from repro.errors import ConfigError


def spec(priority="standard", quota=4):
    return TenantSpec(name="t", priority=priority, quota_inflight=quota)


def stats(inflight=0):
    s = TenantStats(tenant="t")
    s.inflight = inflight
    return s


def test_decision_validation():
    with pytest.raises(ConfigError):
        AdmissionDecision("maybe")
    assert AdmissionDecision(ADMIT).admitted
    assert AdmissionDecision(REJECT_QUOTA, "x").rejected
    with pytest.raises(ConfigError):
        AdmissionController(shed_start=4.0, shed_hard=2.0)


def test_quota_binds_before_overload():
    ctl = AdmissionController(shed_start=2.0, shed_hard=4.0)
    verdict = ctl.decide(spec(quota=4), stats(inflight=4), overload=100.0)
    assert verdict.decision == REJECT_QUOTA
    assert "quota=4" in verdict.reason
    assert ctl.decide(spec(quota=4), stats(3), 0.0).admitted


def test_graded_shedding_ladder():
    ctl = AdmissionController(shed_start=2.0, shed_hard=4.0)
    # Thresholds climb with importance: batch 2.0, standard 3.0,
    # interactive 4.0.
    assert ctl.shed_threshold(spec("batch")) == 2.0
    assert ctl.shed_threshold(spec("standard")) == 3.0
    assert ctl.shed_threshold(spec("interactive")) == 4.0
    for overload, shed in ((1.9, ()), (2.5, ("batch",)),
                           (3.5, ("batch", "standard")),
                           (4.0, ("batch", "standard", "interactive"))):
        for priority in ("interactive", "standard", "batch"):
            verdict = ctl.decide(spec(priority), stats(), overload)
            expected = REJECT_OVERLOAD if priority in shed else ADMIT
            assert verdict.decision == expected, (overload, priority)


@dataclass
class Entry:
    name: str
    size: int
    skips: int = 0
    log: list = field(default_factory=list)


def drain(gate, queue, capacity):
    """Admit with stateful capacity, the way the service consumes it."""
    admitted = []
    state = {"free": capacity}
    for entry in gate.admittable(queue, lambda e: e.size <= state["free"]):
        state["free"] -= entry.size
        queue.remove(entry)
        admitted.append(entry.name)
    return admitted, state["free"]


def test_strict_fifo_at_zero_budget():
    gate = AgingFifoGate(max_head_skips=0)
    queue = [Entry("big", 8), Entry("small", 1)]
    admitted, _ = drain(gate, queue, capacity=4)
    assert admitted == []          # the head blocks everything behind it
    assert queue[0].skips == 0


def test_skipping_ages_the_blocked_head():
    gate = AgingFifoGate(max_head_skips=2)
    queue = [Entry("big", 8), Entry("s1", 1), Entry("s2", 1),
             Entry("s3", 1)]
    admitted, _ = drain(gate, queue, capacity=4)
    # Two skips allowed: s1 and s2 jump the head, then it ages out.
    assert admitted == ["s1", "s2"]
    assert [e.name for e in queue] == ["big", "s3"]
    assert queue[0].skips == 2


def test_unbounded_gate_admits_everything_that_fits():
    gate = AgingFifoGate(max_head_skips=None)
    queue = [Entry("big", 8), Entry("s1", 1), Entry("s2", 1),
             Entry("s3", 1)]
    admitted, free = drain(gate, queue, capacity=3)
    assert admitted == ["s1", "s2", "s3"]
    assert free == 0


def test_admissions_see_reserved_capacity():
    # Two entries both "fit" the initial capacity; the generator contract
    # means the second check runs after the first reservation.
    gate = AgingFifoGate()
    queue = [Entry("a", 3), Entry("b", 3)]
    admitted, _ = drain(gate, queue, capacity=4)
    assert admitted == ["a"]
    assert [e.name for e in queue] == ["b"]


def test_gate_validation():
    with pytest.raises(ConfigError):
        AgingFifoGate(max_head_skips=-1)
