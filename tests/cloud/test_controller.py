"""The always-on ServiceController: end-to-end surrogate runs, the
full-fidelity backend, and cross-process determinism."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cloud import (AdmissionController, BurstTraffic, CostModel,
                         ElasticAutoscaler, PoissonTraffic,
                         ServiceController, SharedClusterBackend,
                         SharedVHadoopService, SlotModelBackend,
                         TenantRegistry)
from repro.config import PlatformConfig
from repro.observatory.slo import AlertBook
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.platform.provisioning import ElasticWorkerPool
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.telemetry import events as EV

REPO_ROOT = Path(__file__).resolve().parents[2]


def surrogate_run(seed, autoscale=True, rate=2.0, horizon=600.0):
    sim = Simulator()
    rngs = RngRegistry(seed)
    cost = CostModel(base_s=20.0, per_mb_s=0.02)
    tenants = TenantRegistry.synthetic(16, rngs.stream("fleet"),
                                       quota_scale=200.0)
    traffic = BurstTraffic("b", tenants, rngs.stream("traffic"),
                           base_rate_per_s=rate, burst_factor=5.0,
                           burst_every_s=200.0, burst_duration_s=80.0)
    slots = 80
    backend = SlotModelBackend(sim, cost, slots=slots, elastic_max=320,
                               boot_s=30.0)
    book = AlertBook(sim=sim)
    autoscaler = None
    if autoscale:
        autoscaler = ElasticAutoscaler(backend.pool, book,
                                       cooldown_s=20.0, grow_step=16,
                                       scale_in_ticks=12)
    controller = ServiceController(
        sim, backend, tenants, traffic,
        admission=AdmissionController(shed_start=12.0, shed_hard=24.0),
        book=book, autoscaler=autoscaler, tick_s=5.0,
        latency_target_s=150.0)
    return controller.run(horizon)


def test_surrogate_run_is_deterministic_in_process():
    a = surrogate_run(7)
    b = surrogate_run(7)
    assert a.trace_digest == b.trace_digest
    assert a.counters() == b.counters()
    assert a.digest() == b.digest()
    assert surrogate_run(8).digest() != a.digest()


def test_surrogate_run_conserves_requests():
    report = surrogate_run(3)
    c = report.counters()
    assert c["submitted"] > 1000
    assert c["submitted"] == (c["admitted"] + c["rejected_quota"]
                              + c["rejected_overload"])
    assert c["completed"] + c["failed"] == c["admitted"]  # fully drained
    assert report.latency.n == c["completed"]
    # Tenant stats roll up to the service totals.
    per_tenant = sum(report.tenants.stats(n).submitted
                     for n in report.tenants.names)
    assert per_tenant == c["submitted"]


def test_autoscaler_improves_the_burst_and_acts_on_alerts():
    off = surrogate_run(7, autoscale=False)
    on = surrogate_run(7, autoscale=True)
    assert on.trace_digest == off.trace_digest  # same offered traffic
    assert on.counters()["scaling_actions"] > 0
    assert any(a.action == "grow" for a in on.actions)
    assert on.counters()["alerts"] >= 1
    # More capacity under the same load: completion latency and/or
    # rejections must improve, and never get worse.
    assert on.latency.p99 <= off.latency.p99
    assert on.goodput >= off.goodput
    peak_on = max(p.workers for p in on.timeline)
    assert peak_on > 80


def test_report_serialization_roundtrip():
    report = surrogate_run(5, horizon=200.0)
    payload = json.loads(report.to_json(timeline_stride=4))
    assert payload["counters"]["submitted"] == report.submitted
    assert payload["trace_digest"] == report.trace_digest
    assert len(payload["timeline"]) <= len(report.timeline) // 4 + 1
    assert payload["tenants"]


CHILD_SCRIPT = """
import json
from tests.cloud.test_controller import surrogate_run
report = surrogate_run(11, rate=1.0, horizon=300.0)
print(json.dumps({"trace": report.trace_digest,
                  "digest": report.digest(),
                  "counters": report.counters()}, sort_keys=True))
"""


def test_two_fresh_processes_agree_byte_for_byte():
    """Satellite of the determinism contract: same seed, two *fresh*
    interpreter processes, identical trace digest and bench counters."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)])
    env["PYTHONHASHSEED"] = "random"   # digests must not depend on it
    outputs = []
    for _ in range(2):
        proc = subprocess.run([sys.executable, "-c", CHILD_SCRIPT],
                              capture_output=True, text=True, env=env,
                              cwd=REPO_ROOT, timeout=120)
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout.strip())
    assert outputs[0] == outputs[1]
    payload = json.loads(outputs[0])
    assert payload["counters"]["submitted"] > 100


def test_full_fidelity_backend_with_elastic_pool():
    """Real jobs on a warm cluster; the autoscaler boots real VMs."""
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=31))
    cluster = platform.provision_cluster("svc", ClusterSpec.spread(4, hosts=2))
    service = SharedVHadoopService(platform, cluster)
    rngs = platform.datacenter.rng
    tenants = TenantRegistry.synthetic(6, rngs.stream("fleet"),
                                       quota_scale=50.0)
    traffic = PoissonTraffic("p", tenants, rngs.stream("traffic"), 0.25)
    book = AlertBook(sim=platform.sim)
    pool = ElasticWorkerPool(cluster, service.scheduler, max_size=4,
                             quiescence_poll_s=5.0)
    autoscaler = ElasticAutoscaler(pool, book, cooldown_s=30.0,
                                   grow_step=2, scale_in_ticks=4)
    backend = SharedClusterBackend(service, pool=pool)
    import dataclasses
    default = backend.request_factory
    backend.request_factory = lambda arrival: default(
        dataclasses.replace(arrival, size_mb=min(arrival.size_mb, 64.0)))
    controller = ServiceController(
        platform.sim, backend, tenants, traffic, book=book,
        autoscaler=autoscaler, tick_s=10.0, latency_target_s=60.0,
        tracer=cluster.tracer, verbose_telemetry=True)
    base_slots = service.scheduler.total_slots("map")
    report = controller.run(horizon_s=240.0)
    c = report.counters()
    assert c["completed"] > 0
    assert c["completed"] + c["failed"] == c["admitted"]
    kinds = {e.kind for e in cluster.tracer.events}
    assert EV.CLOUD_ADMISSION in kinds
    assert EV.SERVICE_REQUEST_DONE in kinds
    # The cramped cluster overloads: the autoscaler must have added real
    # workers, which joined the scheduler's pool.
    if any(a.action == "grow" for a in report.actions):
        assert EV.CLUSTER_WORKER_JOINED in kinds
        assert service.scheduler.total_slots("map") > base_slots
