"""The alert-driven autoscaler: cursors, cooldown, replace and scale-in."""

from types import SimpleNamespace

from repro.cloud import AlertCursor, ElasticAutoscaler
from repro.observatory.slo import DEFAULT_SLOS, SERVICE_SLOS, AlertBook


class FakePool:
    def __init__(self, size=4):
        self.size = size
        self.grows = []     # (n, avoid_hosts)
        self.shrinks = 0

    def grow(self, n=1, avoid_hosts=()):
        self.grows.append((n, frozenset(avoid_hosts)))
        self.size += n
        return n

    def shrink(self, n=1):
        self.shrinks += n
        self.size -= n
        return n


def make_book(now=0.0):
    clock = SimpleNamespace(now=now)
    book = AlertBook(sim=clock)
    for spec in DEFAULT_SLOS + SERVICE_SLOS:
        book.register(spec)
    return book, clock


def test_alert_cursor_sees_each_fire_exactly_once():
    book, _ = make_book()
    cursor = AlertCursor(book, "service-backlog")
    assert cursor.fresh() == []
    book.fire("service-backlog", "svc", 5.0, "capacity")
    assert [a.slo for a in cursor.fresh()] == ["service-backlog"]
    assert cursor.fresh() == []                  # consumed
    book.resolve("service-backlog", "svc")
    book.fire("service-backlog", "svc", 6.0, "capacity")
    assert len(cursor.fresh()) == 1              # a new episode, seen once


def test_fresh_fire_grows_and_cooldown_holds():
    book, clock = make_book()
    pool = FakePool(size=4)
    scaler = ElasticAutoscaler(pool, book, cooldown_s=120.0, grow_step=3)
    assert scaler.tick(0.0, utilization=0.9) == []   # nothing fired yet
    book.fire("service-backlog", "svc", 4.0, "capacity")
    actions = scaler.tick(10.0, utilization=0.9)
    assert [(a.action, a.amount) for a in actions] == [("grow", 3)]
    assert pool.size == 7
    # Still active, but within cooldown: no action.
    assert scaler.tick(60.0, utilization=0.9) == []
    # Past the cooldown the still-active alert drives another grow, even
    # though the book deduplicated (no second fire event).
    actions = scaler.tick(140.0, utilization=0.9)
    assert [a.action for a in actions] == ["grow"]
    assert actions[0].trigger == "service-backlog"


def test_node_down_replaces_immediately_and_avoids_hot_hosts():
    book, _ = make_book()
    pool = FakePool(size=4)
    scaler = ElasticAutoscaler(pool, book, cooldown_s=3600.0)
    book.fire("hot-host", "pm0", 0.97, "cpu")
    book.fire("node-down", "vm-3", 0.0, "vm")
    book.fire("node-down", "vm-4", 0.0, "vm")
    actions = scaler.tick(5.0, utilization=0.5)
    replaces = [a for a in actions if a.action == "replace"]
    assert len(replaces) == 1 and replaces[0].amount == 2
    assert "vm-3" in replaces[0].detail and "vm-4" in replaces[0].detail
    # Placement avoided the hot host.
    assert pool.grows[0][1] == frozenset({"pm0"})
    # Replacement bypasses the grow cooldown bookkeeping: a later
    # node-down replaces again immediately.
    book.fire("node-down", "vm-5", 0.0, "vm")
    actions = scaler.tick(6.0, utilization=0.5)
    assert [a.action for a in actions] == ["replace"]


def test_scale_in_needs_sustained_calm_low_utilization():
    book, _ = make_book()
    pool = FakePool(size=8)
    scaler = ElasticAutoscaler(pool, book, cooldown_s=10.0,
                               scale_in_util=0.3, scale_in_ticks=3)
    # Low utilisation but an active service alert: never shrink.
    book.fire("service-p99", "svc", 2.0, "capacity")
    for t in range(5):
        for action in scaler.tick(float(t), utilization=0.1):
            assert action.action != "shrink"
    book.resolve("service-p99", "svc")
    # Three consecutive calm low-util ticks shrink exactly once (the fire
    # was consumed back at t=0, so t=100 starts the streak).
    assert scaler.tick(100.0, 0.1) == []
    assert scaler.tick(101.0, 0.1) == []
    actions = scaler.tick(102.0, 0.1)
    assert [a.action for a in actions] == ["shrink"]
    assert pool.shrinks == 1
    # A busy tick resets the streak.
    assert scaler.tick(103.0, 0.1) == []
    assert scaler.tick(104.0, 0.9) == []
    assert scaler.tick(105.0, 0.1) == []
    assert scaler.tick(106.0, 0.1) == []
    actions = scaler.tick(107.0, 0.1)
    assert [a.action for a in actions] == ["shrink"]


def test_actions_are_recorded_with_stable_lines():
    book, _ = make_book()
    pool = FakePool(size=2)
    scaler = ElasticAutoscaler(pool, book, grow_step=1)
    book.fire("service-backlog", "svc", 9.0, "capacity")
    scaler.tick(42.0, utilization=1.0)
    assert len(scaler.actions) == 1
    line = scaler.actions[0].line()
    assert line.startswith("42.000000|grow|1|service-backlog|3|")
