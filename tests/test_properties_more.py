"""Second wave of property-based and integration invariants."""

import collections

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import constants as C
from repro.config import HadoopConfig, PlatformConfig
from repro.mapreduce import Job, LocalJobRunner, Mapper, Reducer
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

_SLOW = dict(deadline=None,
             suppress_health_check=[HealthCheck.too_slow,
                                    HealthCheck.data_too_large])


# --- HDFS block packing --------------------------------------------------------

@settings(max_examples=25, **_SLOW)
@given(st.lists(st.integers(1, 4 * 1024 * 1024), min_size=1, max_size=40))
def test_block_packing_preserves_records_and_caps_size(record_sizes):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=0))
    cluster = platform.provision_cluster(
        "pack", ClusterSpec.single_host(3),
        hadoop_config=HadoopConfig(dfs_block_size=1 * C.MiB))
    records = list(range(len(record_sizes)))
    sizes = dict(zip(records, record_sizes))
    packed = cluster.dfs._pack_blocks(records, lambda r: sizes[r])
    # Every record lands exactly once, in order.
    regenerated = [r for _block, payload in packed for r in payload]
    assert regenerated == records
    # Block metadata is consistent with its payload.
    for block, payload in packed:
        assert block.n_records == len(payload)
        assert block.size == sum(sizes[r] for r in payload)
        # A block only exceeds the limit when a single record does.
        if len(payload) > 1:
            assert block.size <= 1 * C.MiB


# --- generic MapReduce equivalence ----------------------------------------------

class KeyModMapper(Mapper):
    def __init__(self, modulus):
        self.modulus = modulus

    def map(self, key, value, context):
        context.emit(int(value) % self.modulus, int(value))


class MaxReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, max(values))


@settings(max_examples=8, **_SLOW)
@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=60),
       st.integers(2, 7), st.integers(1, 4))
def test_generic_job_cluster_equals_local(values, modulus, n_reduces):
    records = [(i, v) for i, v in enumerate(values)]
    job = Job(name="keymax", input_paths=["/in"], output_path="/out",
              mapper=lambda: KeyModMapper(modulus), reducer=MaxReducer,
              n_reduces=n_reduces)
    local = sorted(LocalJobRunner().run(job, records))

    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=1))
    cluster = platform.provision_cluster("g", ClusterSpec.single_host(4))
    platform.upload(cluster, "/in", records, timed=False)
    report = platform.run_job(cluster, job)
    assert sorted(platform.collect(cluster, report)) == local
    # And the answer is right by construction.
    expected = {}
    for v in values:
        k = v % modulus
        expected[k] = max(expected.get(k, -1), v)
    assert dict(local) == expected


# --- migration + running job integration ----------------------------------------

def test_job_finishes_correctly_while_cluster_migrates():
    """The paper's point: despite migration downtime, 'the MapReduce
    workloads can be successfully finished'."""
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=6))
    cluster = platform.provision_cluster("mig", ClusterSpec.single_host(8))
    lines = ["mu nu xi omicron pi " * 10] * 2000
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=lambda r: (len(r[1]) + 1) * 60, timed=False)
    job = wordcount_job("/in", "/out", n_reduces=4, volume_scale=60)
    job_event = platform.runners[cluster.name].submit(job)

    dc = platform.datacenter
    dc.run(until=5.0)  # the job is under way
    migration = dc.virtlm.migrate_cluster(cluster.vms, dc.machine(1))
    dc.sim.run_until(job_event)
    report = job_event.value
    output = dict(platform.runners[cluster.name].read_output(report))
    assert output == dict(collections.Counter(" ".join(lines).split()))
    dc.sim.run_until(migration)
    assert all(vm.host is dc.machine(1) for vm in cluster.vms)


def test_migrating_cluster_job_slower_than_undisturbed():
    def run(migrate: bool) -> float:
        platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=6))
        cluster = platform.provision_cluster("m2", ClusterSpec.single_host(8))
        lines = ["rho sigma tau " * 20] * 2000
        platform.upload(cluster, "/in", lines_as_records(lines),
                        sizeof=lambda r: (len(r[1]) + 1) * 80, timed=False)
        job = wordcount_job("/in", "/out", n_reduces=4, volume_scale=80)
        event = platform.runners[cluster.name].submit(job)
        dc = platform.datacenter
        if migrate:
            dc.run(until=3.0)
            dc.virtlm.migrate_cluster(cluster.vms, dc.machine(1))
        dc.sim.run_until(event)
        return event.value.elapsed

    assert run(migrate=True) > run(migrate=False)
