"""Unit tests for the MapReduce programming API."""


from repro.mapreduce.api import (Context, HashPartitioner, Mapper,
                                 RangePartitioner, Reducer, combine,
                                 group_by_key, run_mapper, run_reducer,
                                 stable_hash)
from repro.mapreduce.counters import Counters


# --- stable_hash ------------------------------------------------------------

def test_stable_hash_deterministic_across_types():
    assert stable_hash("word") == stable_hash("word")
    assert stable_hash(b"word") == stable_hash("word".encode())
    assert stable_hash(42) == stable_hash(42)
    assert stable_hash((1, "a")) == stable_hash((1, "a"))


def test_stable_hash_nonnegative():
    for value in ("a", "zz", -17, 0, 3.14, ("k", 2), b"\xff" * 8):
        assert stable_hash(value) >= 0


def test_stable_hash_spreads_keys():
    buckets = {stable_hash(f"key-{i}") % 16 for i in range(200)}
    assert len(buckets) == 16


# --- Context -------------------------------------------------------------------

def test_context_emit_and_drain():
    ctx = Context()
    ctx.emit("k", 1)
    ctx.write("k", 2)  # Hadoop-style alias
    assert ctx.output == [("k", 1), ("k", 2)]
    assert ctx.drain() == [("k", 1), ("k", 2)]
    assert ctx.output == []


def test_context_counters_shared():
    counters = Counters()
    ctx = Context(counters=counters)
    ctx.counters.incr("g", "n", 5)
    assert counters.get("g", "n") == 5


# --- mapper/reducer execution ------------------------------------------------

class DoublingMapper(Mapper):
    def map(self, key, value, context):
        context.emit(key, value * 2)


class SummingReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


def test_run_mapper_executes_user_code():
    out = run_mapper(DoublingMapper(), [("a", 1), ("b", 2)], Context())
    assert out == [("a", 2), ("b", 4)]


def test_default_mapper_is_identity():
    out = run_mapper(Mapper(), [("a", 1)], Context())
    assert out == [("a", 1)]


def test_setup_cleanup_hooks_called():
    calls = []

    class Hooked(Mapper):
        def setup(self, context):
            calls.append("setup")

        def cleanup(self, context):
            calls.append("cleanup")

    run_mapper(Hooked(), [("a", 1)], Context())
    assert calls == ["setup", "cleanup"]


def test_run_reducer_groups():
    grouped = group_by_key([("a", 1), ("b", 5), ("a", 2)])
    out = run_reducer(SummingReducer(), grouped, Context())
    assert out == [("a", 3), ("b", 5)]


def test_group_by_key_sorted_and_stable():
    grouped = group_by_key([("b", 1), ("a", 2), ("b", 3)])
    assert grouped == [("a", [2]), ("b", [1, 3])]


def test_group_by_key_heterogeneous_keys_no_typeerror():
    grouped = group_by_key([(1, "x"), ("a", "y"), ((2, 3), "z")])
    assert len(grouped) == 3


def test_combine_applies_combiner():
    pairs = [("a", 1), ("a", 1), ("b", 1)]
    out = combine(SummingReducer, pairs, Context())
    assert sorted(out) == [("a", 2), ("b", 1)]


def test_combine_none_is_identity():
    pairs = [("a", 1), ("a", 1)]
    assert combine(None, pairs, Context()) is pairs


# --- partitioners --------------------------------------------------------------

def test_hash_partitioner_in_range():
    p = HashPartitioner()
    for key in ("a", "b", 42, (1, 2)):
        assert 0 <= p.partition(key, 7) < 7


def test_range_partitioner_orders_partitions():
    p = RangePartitioner(boundaries=[10, 20])
    assert p.partition(5, 3) == 0
    assert p.partition(10, 3) == 1
    assert p.partition(15, 3) == 1
    assert p.partition(25, 3) == 2


def test_range_partitioner_single_partition():
    p = RangePartitioner(boundaries=[])
    assert p.partition("anything", 1) == 0


# --- counters --------------------------------------------------------------------

def test_counters_incr_get_merge():
    a = Counters()
    a.incr("job", "maps", 2)
    b = Counters()
    b.incr("job", "maps", 3)
    b.incr("job", "reduces")
    a.merge(b)
    assert a.get("job", "maps") == 5
    assert a.get("job", "reduces") == 1
    assert a.get("job", "missing") == 0


def test_counters_iteration_sorted():
    c = Counters()
    c.incr("b", "y")
    c.incr("a", "x")
    assert list(c) == [("a", "x", 1), ("b", "y", 1)]
    assert c.as_dict() == {"a": {"x": 1}, "b": {"y": 1}}
