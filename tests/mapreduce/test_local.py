"""Unit tests for the LocalJobRunner (pure-functional reference)."""

import collections

from repro.mapreduce import Job, LocalJobRunner, Mapper
from repro.workloads.wordcount import (lines_as_records, wordcount_job)

LINES = ["alpha beta gamma", "beta gamma", "gamma gamma alpha"]
RECORDS = lines_as_records(LINES)


def test_local_wordcount_correct():
    runner = LocalJobRunner()
    out = runner.run(wordcount_job("/in", "/out", n_reduces=2), RECORDS)
    assert dict(out) == dict(collections.Counter(" ".join(LINES).split()))


def test_local_counters():
    runner = LocalJobRunner()
    runner.run(wordcount_job("/in", "/out", n_reduces=1), RECORDS)
    total = sum(collections.Counter(" ".join(LINES).split()).values())
    assert runner.counters.get("job", "map_output_records") == total


def test_local_map_only():
    runner = LocalJobRunner()
    job = Job(name="id", input_paths=["/in"], output_path="/out",
              mapper=Mapper, n_reduces=0)
    assert runner.run(job, RECORDS) == RECORDS


def test_local_output_order_by_partition_then_key():
    runner = LocalJobRunner()
    out = runner.run(wordcount_job("/in", "/out", n_reduces=3), RECORDS)
    # Within each partition, keys appear sorted; overall it is the
    # concatenation of the sorted partitions (Hadoop part-file order).
    job = wordcount_job("/in", "/out", n_reduces=3)
    partitions = [job.partitioner.partition(k, 3) for k, _v in out]
    assert partitions == sorted(partitions)


def test_local_combiner_same_result():
    plain = LocalJobRunner().run(
        wordcount_job("/in", "/out", n_reduces=2, use_combiner=False),
        RECORDS)
    combined = LocalJobRunner().run(
        wordcount_job("/in", "/out", n_reduces=2, use_combiner=True),
        RECORDS)
    assert sorted(plain) == sorted(combined)


def test_local_runner_reusable():
    runner = LocalJobRunner()
    job = wordcount_job("/in", "/out", n_reduces=1)
    first = runner.run(job, RECORDS)
    second = runner.run(job, RECORDS)
    assert first == second
