"""Tests for speculative map execution."""

import collections

import pytest

from repro.config import HadoopConfig, PlatformConfig
from repro.errors import ConfigError
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)

LINES = ["one two three four five"] * 400
RECORDS = lines_as_records(LINES)
EXPECTED = dict(collections.Counter(" ".join(LINES).split()))


def run_with(speculation: bool, straggler: bool = True, seed=31):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster(
        "spec", ClusterSpec.single_host(8),
        hadoop_config=HadoopConfig(speculative_execution=speculation,
                                   speculative_slowdown=1.3))
    platform.upload(cluster, "/in", RECORDS, sizeof=line_record_sizeof,
                    timed=False)
    job = wordcount_job("/in", "/out", n_reduces=2)
    # One map per map slot so every worker — including the contended one —
    # runs at least one; give maps real CPU weight so contention shows.
    job.force_num_maps = 2 * len(cluster.workers)
    job.map_cpu_per_record = 0.08
    if straggler:
        # Saturate one worker's VCPU with a big background computation so
        # any map landing there becomes a straggler.
        cluster.workers[0].compute(3000.0)
        cluster.workers[0].compute(3000.0)
    report = platform.run_job(cluster, job)
    return platform, cluster, report


def test_speculation_config_validation():
    with pytest.raises(ConfigError):
        HadoopConfig(speculative_slowdown=1.0)


def test_output_identical_with_and_without_speculation():
    _p1, _c1, without = run_with(False)
    _p2, _c2, with_spec = run_with(True)
    platform, cluster, report = run_with(True)
    runner = platform.runners[cluster.name]
    assert dict(runner.read_output(report)) == EXPECTED


def test_speculation_launches_backup_for_straggler():
    platform, _cluster, report = run_with(True)
    assert platform.tracer.count("task.map.speculate") >= 1
    # Exactly one result per logical map survived.
    map_ids = [t.task_id for t in report.tasks if t.kind == "map"]
    assert len(map_ids) == len(set(map_ids)) == report.n_maps


def test_speculation_helps_under_contention():
    _p1, _c1, without = run_with(False)
    _p2, _c2, with_spec = run_with(True)
    assert with_spec.elapsed < without.elapsed


def test_no_speculation_without_stragglers():
    platform, _cluster, _report = run_with(True, straggler=False)
    assert platform.tracer.count("task.map.speculate") == 0


# -- reduce-phase speculation -------------------------------------------------

REDUCE_WORDS = [f"w{i:03d}" for i in range(240)]
REDUCE_LINES = [" ".join(REDUCE_WORDS[i:i + 8])
                for i in range(0, 240, 8)] * 10
REDUCE_RECORDS = lines_as_records(REDUCE_LINES)
REDUCE_EXPECTED = dict(collections.Counter(" ".join(REDUCE_LINES).split()))


def run_reduces_with(speculation: bool, straggler: bool = True, seed=37):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    cluster = platform.provision_cluster(
        "rspec", ClusterSpec.single_host(8),
        hadoop_config=HadoopConfig(speculative_execution=speculation,
                                   speculative_slowdown=1.3))
    platform.upload(cluster, "/rin", REDUCE_RECORDS,
                    sizeof=line_record_sizeof, timed=False)
    # One reduce per reduce slot so every worker — including the contended
    # one — runs one; give reduces real CPU weight so contention shows.
    n_reduces = (cluster.config.reduce_tasks_maximum
                 * len(cluster.workers))
    job = wordcount_job("/rin", "/rout", n_reduces=n_reduces)
    job.reduce_cpu_per_record = 0.08
    if straggler:
        cluster.workers[0].compute(3000.0)
        cluster.workers[0].compute(3000.0)
    report = platform.run_job(cluster, job)
    return platform, cluster, report


def test_reduce_speculation_launches_backup_for_straggler():
    platform, cluster, report = run_reduces_with(True)
    assert platform.tracer.count("task.reduce.speculate") >= 1
    assert report.speculated_reduces >= 1
    # Exactly one surviving attempt per partition.
    reduce_ids = [t.task_id for t in report.tasks if t.kind == "reduce"]
    assert len(reduce_ids) == len(set(reduce_ids)) == report.n_reduces
    runner = platform.runners[cluster.name]
    assert dict(runner.read_output(report)) == REDUCE_EXPECTED


def test_reduce_output_identical_with_and_without_speculation():
    platform1, cluster1, without = run_reduces_with(False)
    platform2, cluster2, with_spec = run_reduces_with(True)
    out_without = platform1.runners[cluster1.name].read_output(without)
    out_with = platform2.runners[cluster2.name].read_output(with_spec)
    assert out_without == out_with
    assert without.speculated_reduces == 0


def test_reduce_speculation_helps_under_contention():
    _p1, _c1, without = run_reduces_with(False)
    _p2, _c2, with_spec = run_reduces_with(True)
    assert with_spec.elapsed < without.elapsed
