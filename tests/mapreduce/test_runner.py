"""Integration tests for the timed cluster MapReduce runner."""

import collections

import pytest

from repro import constants as C
from repro.config import HadoopConfig, PlatformConfig
from repro.errors import JobConfigError, TaskFailure
from repro.mapreduce import Job, LocalJobRunner, Mapper, Reducer
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads.wordcount import (WordCountMapper, WordCountReducer,
                                       lines_as_records, line_record_sizeof,
                                       wordcount_job)

LINES = ["the quick brown fox", "jumps over the lazy dog",
         "the dog barks", "quick quick fox"] * 5
RECORDS = lines_as_records(LINES)


def make_cluster(n=8, layout="normal", seed=11, hadoop_config=None):
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=seed))
    placement = (ClusterSpec.single_host(n) if layout == "normal"
                 else ClusterSpec.packed(n, hosts=2))
    cluster = platform.provision_cluster("t", placement,
                                         hadoop_config=hadoop_config)
    return platform, cluster


def upload_corpus(platform, cluster, path="/wc/in"):
    platform.upload(cluster, path, RECORDS, sizeof=line_record_sizeof,
                    timed=False)


def test_wordcount_output_matches_python_counter():
    platform, cluster = make_cluster()
    upload_corpus(platform, cluster)
    job = wordcount_job("/wc/in", "/wc/out", n_reduces=3)
    report = platform.run_job(cluster, job)
    output = dict(platform.collect(cluster, report))
    expected = collections.Counter(" ".join(LINES).split())
    assert output == dict(expected)


def test_cluster_equals_local_runner():
    platform, cluster = make_cluster()
    upload_corpus(platform, cluster)
    job = wordcount_job("/wc/in", "/wc/out", n_reduces=4)
    report = platform.run_job(cluster, job)
    cluster_out = sorted(platform.collect(cluster, report))
    local_out = sorted(LocalJobRunner().run(job, RECORDS))
    assert cluster_out == local_out


def test_report_phases_and_counts():
    platform, cluster = make_cluster()
    upload_corpus(platform, cluster)
    job = wordcount_job("/wc/in", "/wc/out", n_reduces=2)
    report = platform.run_job(cluster, job)
    assert report.elapsed > 0
    assert report.n_maps >= 1
    assert report.n_reduces == 2
    assert 0 < report.map_phase_s < report.elapsed
    assert report.shuffle_bytes > 0
    assert len(report.output_paths) == 2
    maps = [t for t in report.tasks if t.kind == "map"]
    reduces = [t for t in report.tasks if t.kind == "reduce"]
    assert len(maps) == report.n_maps
    assert len(reduces) == 2
    assert all(t.end > t.start for t in report.tasks)


def test_counters_aggregated():
    platform, cluster = make_cluster()
    upload_corpus(platform, cluster)
    job = wordcount_job("/wc/in", "/wc/out", n_reduces=1)
    report = platform.run_job(cluster, job)
    total_words = sum(collections.Counter(" ".join(LINES).split()).values())
    assert report.counters.get("job", "map_output_records") == total_words
    assert report.counters.get("job", "map_input_records") == len(RECORDS)


def test_map_only_job_writes_parts():
    platform, cluster = make_cluster()
    upload_corpus(platform, cluster)
    job = Job(name="identity", input_paths=["/wc/in"], output_path="/id",
              mapper=Mapper, n_reduces=0)
    report = platform.run_job(cluster, job)
    assert report.output_paths
    out = platform.collect(cluster, report)
    assert sorted(out) == sorted(RECORDS)


def test_force_num_maps_splits_records():
    platform, cluster = make_cluster()
    upload_corpus(platform, cluster)
    job = wordcount_job("/wc/in", "/wc/out", n_reduces=1)
    job.force_num_maps = 5
    report = platform.run_job(cluster, job)
    assert report.n_maps == 5
    output = dict(platform.collect(cluster, report))
    assert output == dict(collections.Counter(" ".join(LINES).split()))


def test_locality_aware_scheduling_mostly_local():
    config = HadoopConfig(dfs_block_size=1 * C.MiB)
    platform, cluster = make_cluster(n=8, hadoop_config=config)
    big = lines_as_records(["word " * 200] * 2000)
    platform.upload(cluster, "/big", big, sizeof=line_record_sizeof,
                    timed=False)
    job = wordcount_job("/big", "/out", n_reduces=2)
    report = platform.run_job(cluster, job)
    fractions = report.locality_fractions()
    assert fractions.get("node", 0.0) + fractions.get("host", 0.0) > 0.5


def test_task_failure_propagates():
    class Exploding(Mapper):
        def map(self, key, value, context):
            raise RuntimeError("boom")

    platform, cluster = make_cluster()
    upload_corpus(platform, cluster)
    job = Job(name="bad", input_paths=["/wc/in"], output_path="/bad",
              mapper=Exploding, n_reduces=0)
    event = platform.runners[cluster.name].submit(job)
    with pytest.raises(TaskFailure):
        platform.sim.run()
        _ = event.value


def test_missing_input_raises():
    platform, cluster = make_cluster()
    job = Job(name="ghost", input_paths=["/nope"], output_path="/o",
              mapper=Mapper, n_reduces=0)
    event = platform.runners[cluster.name].submit(job)
    with pytest.raises(JobConfigError):
        platform.sim.run()
        _ = event.value


def test_directory_input_expansion():
    platform, cluster = make_cluster()
    upload_corpus(platform, cluster)
    first = Job(name="stage1", input_paths=["/wc/in"], output_path="/stage1",
                mapper=Mapper, n_reduces=0)
    report1 = platform.run_job(cluster, first)
    assert all(p.startswith("/stage1/") for p in report1.output_paths)
    second = wordcount_job("/stage1", "/stage2", n_reduces=1)
    report2 = platform.run_job(cluster, second)
    output = dict(platform.collect(cluster, report2))
    assert output == dict(collections.Counter(" ".join(LINES).split()))


def test_more_reduces_take_longer_on_tiny_data():
    times = {}
    for n_reduces in (1, 6):
        platform, cluster = make_cluster(n=16, seed=3)
        upload_corpus(platform, cluster)
        job = wordcount_job("/wc/in", "/out", n_reduces=n_reduces)
        times[n_reduces] = platform.run_job(cluster, job).elapsed
    assert times[6] > times[1]


def test_combiner_reduces_shuffle_volume():
    shuffled = {}
    for use in (False, True):
        platform, cluster = make_cluster(seed=9)
        upload_corpus(platform, cluster)
        job = wordcount_job("/wc/in", "/out", n_reduces=2, use_combiner=use)
        shuffled[use] = platform.run_job(cluster, job).shuffle_bytes
    assert shuffled[True] < shuffled[False]
    # ... and the outputs are identical either way.


def test_use_combiner_config_gate():
    # Cluster-level use_combiner=False ignores the job's combiner.
    config = HadoopConfig(use_combiner=False)
    platform, cluster = make_cluster(hadoop_config=config)
    upload_corpus(platform, cluster)
    job = wordcount_job("/wc/in", "/out", n_reduces=2, use_combiner=True)
    report = platform.run_job(cluster, job)
    total_words = sum(collections.Counter(" ".join(LINES).split()).values())
    # Without combining, every (word, 1) pair is shuffled.
    assert report.counters.get("job", "map_output_records") == total_words


def test_job_validation():
    with pytest.raises(JobConfigError):
        Job(name="", input_paths=["/a"], output_path="/b", mapper=Mapper)
    with pytest.raises(JobConfigError):
        Job(name="x", input_paths=[], output_path="/b", mapper=Mapper)
    with pytest.raises(JobConfigError):
        Job(name="x", input_paths=["/a"], output_path="/b", mapper=Mapper,
            n_reduces=-1)
    with pytest.raises(JobConfigError):
        Job(name="x", input_paths=["/a"], output_path="/b", mapper=Mapper,
            n_reduces=0, reducer=Reducer)
    with pytest.raises(JobConfigError):
        Job(name="x", input_paths=["/a"], output_path="/b", mapper=Mapper,
            force_num_maps=0)


def test_cross_domain_job_slower_than_normal():
    elapsed = {}
    big = lines_as_records(["lorem ipsum dolor sit amet " * 40] * 4000)
    for layout in ("normal", "cross-domain"):
        platform, cluster = make_cluster(n=16, layout=layout, seed=2)
        platform.upload(cluster, "/big", big,
                        sizeof=lambda r: (len(r[1]) + 1) * 50, timed=False)
        job = wordcount_job("/big", "/out", n_reduces=4, volume_scale=50)
        elapsed[layout] = platform.run_job(cluster, job).elapsed
    assert elapsed["cross-domain"] > elapsed["normal"]
