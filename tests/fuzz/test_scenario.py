"""Generator and scenario-format properties.

The fuzzer's replayability rests on two contracts: a seed expands to the
same scenario every time (generator determinism), and a scenario survives
the serialize → parse round trip with its digest intact (repro files stay
valid forever).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.fuzz import (FORMAT_VERSION, FuzzFault, FuzzJob, KnobSample,
                        Scenario, ScenarioGenerator, corpus_digest,
                        generate_scenario, generate_scenarios)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 10_000))
def test_roundtrip_preserves_digest(seed):
    scenario = generate_scenario(seed)
    clone = Scenario.from_json(scenario.to_json())
    assert clone == scenario
    assert clone.digest() == scenario.digest()


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 10_000))
def test_generator_is_deterministic(seed):
    assert generate_scenario(seed) == generate_scenario(seed)
    assert (ScenarioGenerator(seed).generate().digest()
            == ScenarioGenerator(seed).generate().digest())


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_generated_scenarios_validate(seed):
    scenario = generate_scenario(seed)
    scenario.validate()  # must not raise
    assert 3 <= scenario.n_vms
    assert scenario.knobs.dfs_replication >= 1


def test_adjacent_seeds_differ():
    digests = {generate_scenario(seed).digest() for seed in range(50)}
    assert len(digests) == 50


def test_corpus_digest_is_order_sensitive_and_stable():
    scenarios = generate_scenarios(range(5))
    assert corpus_digest(scenarios) == corpus_digest(
        generate_scenarios(range(5)))
    assert corpus_digest(scenarios) != corpus_digest(scenarios[::-1])


def test_without_rederives_digest():
    scenario = generate_scenario(3)
    trimmed = scenario.without(faults=())
    assert trimmed.faults == ()
    assert trimmed.digest() != scenario.digest() or not scenario.faults


def test_crash_outage_windows_are_disjoint():
    margin = ScenarioGenerator.CRASH_MARGIN_S
    for seed in range(300):
        windows = []
        for f in generate_scenario(seed).faults:
            if f.kind not in ("vm.crash", "host.crash"):
                continue
            end = (float("inf") if f.duration == 0.0
                   else f.at + f.duration + margin)
            windows.append((f.at, end))
        windows.sort()
        for (_, prev_end), (start, _) in zip(windows, windows[1:]):
            assert start >= prev_end


def test_format_version_guard():
    data = generate_scenario(0).to_dict()
    data["format"] = FORMAT_VERSION + 1
    with pytest.raises(ConfigError):
        Scenario.from_dict(data)


def test_invalid_scenarios_rejected():
    base = generate_scenario(0)
    with pytest.raises(ConfigError):
        base.without(n_vms=1).validate()
    with pytest.raises(ConfigError):
        base.without(jobs=(FuzzJob(kind="sort-of-wrong", size_mb=4,
                                   n_reduces=1, pool="p"),)).validate()
    with pytest.raises(ConfigError):
        base.without(faults=(FuzzFault(at=-1.0, kind="vm.crash",
                                       scope="worker", index=0),)).validate()
    with pytest.raises(ConfigError):
        base.without(knobs=KnobSample(dfs_replication=0)).validate()
