"""Shrinker properties: minimization preserves the violation, repro files
round-trip, and the budget bounds work.

A stubbed runner keeps these tests fast: the "platform bug" is a
predicate over the scenario, so the shrinker's search behaviour can be
pinned without simulating anything.
"""

import pytest

from repro.errors import ConfigError
from repro.fuzz import (FuzzRunResult, ShrinkResult, Shrinker, Violation,
                        generate_scenario, load_repro, write_repro)
from repro.fuzz.invariants import RunContext


def fake_runner(predicate, invariant="crash"):
    """A run_scenario stand-in: violates ``invariant`` iff predicate."""
    def run(scenario):
        violations = []
        if predicate(scenario):
            violations.append(Violation(invariant, "stub detail"))
        return FuzzRunResult(scenario=scenario, violations=violations,
                             context=RunContext(scenario=scenario),
                             run_digest="0" * 16)
    return run


def find_seed_with(predicate, start=0):
    for seed in range(start, start + 500):
        s = generate_scenario(seed)
        if predicate(s):
            return s
    raise AssertionError("no matching seed in range")


class TestShrink:
    def test_preserves_violation_and_minimizes(self):
        # "Bug": any scenario with at least one fault fails.
        scenario = find_seed_with(lambda s: len(s.faults) >= 2
                                  and len(s.jobs) >= 2)
        runner = fake_runner(lambda s: len(s.faults) >= 1)
        result = Shrinker(runner=runner).shrink(
            scenario, Violation("crash", "seed violation"))
        assert result.violation.invariant == "crash"
        # Minimal: can't drop the last fault, and jobs shrink to one.
        assert len(result.scenario.faults) == 1
        assert len(result.scenario.jobs) == 1
        assert runner(result.scenario).violations

    def test_result_scenario_always_validates(self):
        scenario = find_seed_with(lambda s: s.faults and s.n_vms > 3)
        runner = fake_runner(lambda s: True)
        result = Shrinker(runner=runner).shrink(
            scenario, Violation("crash", "x"))
        result.scenario.validate()  # shrunk repro must stay executable

    def test_different_invariant_does_not_count(self):
        scenario = generate_scenario(0)
        runner = fake_runner(lambda s: True, invariant="output")
        result = Shrinker(runner=runner).shrink(
            scenario, Violation("crash", "x"))
        # Nothing matched the target name: the scenario is unchanged.
        assert result.scenario == scenario

    def test_budget_bounds_candidate_runs(self):
        scenario = find_seed_with(lambda s: len(s.faults) >= 2)
        calls = []
        base = fake_runner(lambda s: True)

        def counting(s):
            calls.append(1)
            return base(s)
        shrinker = Shrinker(budget=5, runner=counting)
        shrinker.shrink(scenario, Violation("crash", "x"))
        assert len(calls) <= 5


class TestReproFiles:
    def make_result(self):
        scenario = generate_scenario(7)
        return ShrinkResult(scenario=scenario,
                            violation=Violation("output", "detail",
                                                job="wordcount-0"))

    def test_write_then_load_roundtrip(self, tmp_path):
        result = self.make_result()
        path = write_repro(result, tmp_path / "repro.json")
        scenario, violation = load_repro(path)
        assert scenario == result.scenario
        assert violation == result.violation

    def test_corrupt_digest_rejected(self, tmp_path):
        result = self.make_result()
        path = write_repro(result, tmp_path / "repro.json")
        text = path.read_text().replace('"n_vms": ', '"n_vms": 1')
        path.write_text(text)
        with pytest.raises(ConfigError):
            load_repro(path)
