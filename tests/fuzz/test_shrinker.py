"""Shrinker properties: minimization preserves the violation, repro files
round-trip, and the budget bounds work.

A stubbed runner keeps these tests fast: the "platform bug" is a
predicate over the scenario, so the shrinker's search behaviour can be
pinned without simulating anything.
"""

import time

import pytest

from repro.errors import ConfigError
from repro.fuzz import (FuzzRunResult, ShrinkResult, Shrinker, Violation,
                        generate_scenario, load_repro, write_repro)
from repro.fuzz import shrinker as shrinker_mod
from repro.fuzz.invariants import RunContext


def fake_runner(predicate, invariant="crash"):
    """A run_scenario stand-in: violates ``invariant`` iff predicate."""
    def run(scenario):
        violations = []
        if predicate(scenario):
            violations.append(Violation(invariant, "stub detail"))
        return FuzzRunResult(scenario=scenario, violations=violations,
                             context=RunContext(scenario=scenario),
                             run_digest="0" * 16)
    return run


def find_seed_with(predicate, start=0):
    for seed in range(start, start + 500):
        s = generate_scenario(seed)
        if predicate(s):
            return s
    raise AssertionError("no matching seed in range")


class TestShrink:
    def test_preserves_violation_and_minimizes(self):
        # "Bug": any scenario with at least one fault fails.
        scenario = find_seed_with(lambda s: len(s.faults) >= 2
                                  and len(s.jobs) >= 2)
        runner = fake_runner(lambda s: len(s.faults) >= 1)
        result = Shrinker(runner=runner).shrink(
            scenario, Violation("crash", "seed violation"))
        assert result.violation.invariant == "crash"
        # Minimal: can't drop the last fault, and jobs shrink to one.
        assert len(result.scenario.faults) == 1
        assert len(result.scenario.jobs) == 1
        assert runner(result.scenario).violations

    def test_result_scenario_always_validates(self):
        scenario = find_seed_with(lambda s: s.faults and s.n_vms > 3)
        runner = fake_runner(lambda s: True)
        result = Shrinker(runner=runner).shrink(
            scenario, Violation("crash", "x"))
        result.scenario.validate()  # shrunk repro must stay executable

    def test_different_invariant_does_not_count(self):
        scenario = generate_scenario(0)
        runner = fake_runner(lambda s: True, invariant="output")
        result = Shrinker(runner=runner).shrink(
            scenario, Violation("crash", "x"))
        # Nothing matched the target name: the scenario is unchanged.
        assert result.scenario == scenario

    def test_budget_bounds_candidate_runs(self):
        scenario = find_seed_with(lambda s: len(s.faults) >= 2)
        calls = []
        base = fake_runner(lambda s: True)

        def counting(s):
            calls.append(1)
            return base(s)
        shrinker = Shrinker(budget=5, runner=counting)
        shrinker.shrink(scenario, Violation("crash", "x"))
        assert len(calls) <= 5


def _always_violates(scenario):
    """run_scenario stand-in used *inside* the guard child (fork-inherited)."""
    return FuzzRunResult(scenario=scenario,
                         violations=[Violation("crash", "guarded detail",
                                               job="job-0")],
                         context=RunContext(scenario=scenario),
                         run_digest="0" * 16)


def _never_returns(scenario):
    time.sleep(60.0)


class TestGuardedCandidates:
    """candidate_timeout_s runs each candidate in a killable child.

    The stubs monkeypatch ``run_scenario`` *in the shrinker module* and
    rely on the fork start method: the child inherits the patched global,
    so no scenario is ever simulated here.
    """

    def _shrinker(self, timeout_s):
        return Shrinker(candidate_timeout_s=timeout_s, mp_context="fork")

    def test_timeout_requires_default_runner(self):
        with pytest.raises(ConfigError, match="custom runner"):
            Shrinker(runner=lambda s: None, candidate_timeout_s=1.0)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ConfigError, match="> 0"):
            Shrinker(candidate_timeout_s=0.0)

    def test_violation_round_trips_through_the_guard(self, monkeypatch):
        monkeypatch.setattr(shrinker_mod, "run_scenario", _always_violates)
        shrinker = self._shrinker(timeout_s=30.0)
        violation = shrinker._still_fails(generate_scenario(0), "crash")
        assert violation == Violation("crash", "guarded detail", job="job-0")
        assert shrinker.runs == 1 and shrinker.timeouts == 0

    def test_nonmatching_invariant_rejected(self, monkeypatch):
        monkeypatch.setattr(shrinker_mod, "run_scenario", _always_violates)
        shrinker = self._shrinker(timeout_s=30.0)
        assert shrinker._still_fails(generate_scenario(0), "output") is None

    def test_timed_out_candidate_is_rejected_and_counted(self, monkeypatch):
        monkeypatch.setattr(shrinker_mod, "run_scenario", _never_returns)
        shrinker = self._shrinker(timeout_s=0.3)
        assert shrinker._still_fails(generate_scenario(0), "crash") is None
        assert shrinker.timeouts == 1
        # A rejected candidate still spent a run from the budget.
        assert shrinker.runs == 1


class TestReproFiles:
    def make_result(self):
        scenario = generate_scenario(7)
        return ShrinkResult(scenario=scenario,
                            violation=Violation("output", "detail",
                                                job="wordcount-0"))

    def test_write_then_load_roundtrip(self, tmp_path):
        result = self.make_result()
        path = write_repro(result, tmp_path / "repro.json")
        scenario, violation = load_repro(path)
        assert scenario == result.scenario
        assert violation == result.violation

    def test_corrupt_digest_rejected(self, tmp_path):
        result = self.make_result()
        path = write_repro(result, tmp_path / "repro.json")
        text = path.read_text().replace('"n_vms": ', '"n_vms": 1')
        path.write_text(text)
        with pytest.raises(ConfigError):
            load_repro(path)
