"""End-to-end fuzz execution: determinism, invariants, fault resolution."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fuzz import (InvariantSuite, Violation, expected_failed_workers,
                        generate_scenario, run_scenario, summarize)
from repro.fuzz.invariants import JobOutcome, RunContext


def test_run_is_deterministic():
    scenario = generate_scenario(5)
    a = run_scenario(scenario)
    b = run_scenario(scenario)
    assert a.run_digest == b.run_digest
    assert [v.key() for v in a.violations] == [v.key() for v in b.violations]


def test_clean_seed_passes_every_invariant():
    result = run_scenario(generate_scenario(0))
    assert result.ok, summarize(result.violations)
    assert result.context.jobs  # outcomes were actually collected


def test_faulty_seed_converges():
    # Find a generated scenario with crash faults; recovery must converge.
    for seed in range(60):
        scenario = generate_scenario(seed)
        if any(f.kind in ("vm.crash", "host.crash")
               for f in scenario.faults):
            break
    else:
        pytest.skip("no crashy seed in range")
    result = run_scenario(scenario)
    assert result.ok, summarize(result.violations)


def test_adversary_scenario_is_deterministic_across_processes():
    # Seed 21 carries two adversarial actors (spam + hotkey).  Their
    # payload builders lean on key hashing, so replay the scenario in two
    # fresh interpreters with *different* hash randomization and demand an
    # identical run digest — repro files must mean the same thing on any
    # machine.
    seed = 21
    script = (
        "from repro.fuzz import generate_scenario, run_scenario\n"
        f"result = run_scenario(generate_scenario({seed}))\n"
        "print(result.run_digest)\n"
    )
    digests = []
    for hashseed in ("1", "2"):
        env = dict(os.environ,
                   PYTHONPATH=str(Path(__file__).parents[2] / "src"),
                   PYTHONHASHSEED=hashseed)
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        digests.append(proc.stdout.strip())
    assert digests[0] == digests[1]
    assert len(digests[0]) == 16


def test_summarize_formats():
    assert summarize([]) == "ok"
    v = [Violation("output", "x", job="j"), Violation("crash", "y")]
    assert summarize(v) == "2 violations (crash, output)"


def test_crash_short_circuits_suite():
    ctx = RunContext(scenario=generate_scenario(0), crash="Boom: bang")
    violations = InvariantSuite().check(ctx)
    assert [v.invariant for v in violations] == ["crash"]


def test_counter_mismatch_is_reported():
    class Want:
        def get(self, group, name):
            return 100

    class Got:
        def get(self, group, name):
            return 99

    class Report:
        counters = Got()

    job = JobOutcome(name="j", kind="wordcount", pool="p", n_records=100,
                     report=Report(), oracle_counters=Want())
    ctx = RunContext(scenario=generate_scenario(0), jobs=[job])
    ctx.scenario = generate_scenario(0)
    violations = InvariantSuite().check(ctx)
    assert any(v.invariant == "counters" for v in violations)
