"""The regression corpus: every shrunk repro the fuzzer produced replays
clean against the fixed platform.

Each ``.json`` file under ``regressions/`` is a minimized scenario that
used to violate the invariant recorded inside it.  The test replays the
scenario and asserts the pinned invariant no longer fires — so none of
the fixed bugs can silently return.

``RESIDUALS`` documents violations that are *expected by design* on a
repro's scenario even after the fix: the requeue repro deliberately
crashes every worker on a packed host, and data whose every replica died
stays lost (replication is then a property of the scenario, not a bug).
"""

from pathlib import Path

import pytest

from repro.fuzz import load_repro, replay_repro

CORPUS = sorted((Path(__file__).parent / "regressions").glob("*.json"))

#: repro stem → invariants legitimately still violated after the fix.
RESIDUALS = {
    "requeue-total-outage": {"replication"},
}


def test_corpus_is_present():
    # The PR's bug hunt produced at least these five shrunk repros.
    assert len(CORPUS) >= 5


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_repro_replays_clean(path):
    scenario, pinned = load_repro(path)
    result = replay_repro(path)
    violated = {v.invariant for v in result.violations}
    assert pinned.invariant not in violated, (
        f"{path.stem}: fixed bug came back: {result.violations}")
    residual = RESIDUALS.get(path.stem, set())
    unexpected = violated - residual
    assert not unexpected, (
        f"{path.stem}: new violations on a pinned repro: "
        f"{[v for v in result.violations if v.invariant in unexpected]}")


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_repro_scenarios_are_minimal(path):
    scenario, _ = load_repro(path)
    # The shrinker's contract for the corpus: small enough to debug by eye.
    assert len(scenario.faults) <= 3
    assert len(scenario.jobs) <= 2
