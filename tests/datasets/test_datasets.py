"""Unit tests for the dataset generators."""

import numpy as np
import pytest

from repro.datasets import (CONTROL_CLASSES, TeraRecord, generate_corpus,
                            generate_sample_data, generate_synthetic_control,
                            teragen)
from repro.datasets.sample_data import SAMPLE_COMPONENTS, sample_sizeof
from repro.datasets.synthetic_control import control_chart_sizeof
from repro.datasets.tera import records_for_bytes, tera_sizeof
from repro.datasets.text import corpus_sizeof


# --- synthetic control --------------------------------------------------------

def test_control_shape_and_labels():
    X, labels = generate_synthetic_control(n_per_class=10, length=60)
    assert X.shape == (60, 60)
    assert labels.shape == (60,)
    assert set(labels) == set(range(6))
    assert len(CONTROL_CLASSES) == 6


def test_control_default_is_uci_shape():
    X, labels = generate_synthetic_control()
    assert X.shape == (600, 60)
    assert (np.bincount(labels) == 100).all()


def test_control_class_statistics():
    rng = np.random.default_rng(1)
    X, labels = generate_synthetic_control(n_per_class=50, rng=rng)
    t = np.arange(60)

    def mean_slope(cls):
        rows = X[labels == cls]
        return np.polyfit(t, rows.mean(axis=0), 1)[0]

    # increasing/decreasing trends have clear opposite slopes.
    assert mean_slope(2) > 0.15
    assert mean_slope(3) < -0.15
    # upward shift ends above its start; downward below.
    up = X[labels == 4]
    assert up[:, -10:].mean() > up[:, :10].mean() + 5
    down = X[labels == 5]
    assert down[:, -10:].mean() < down[:, :10].mean() - 5
    # cyclic class has higher variance than normal.
    assert X[labels == 1].var() > X[labels == 0].var()
    # normal class stays near the mean level 30.
    assert abs(X[labels == 0].mean() - 30.0) < 1.0


def test_control_reproducible():
    a, _ = generate_synthetic_control(rng=np.random.default_rng(5))
    b, _ = generate_synthetic_control(rng=np.random.default_rng(5))
    assert (a == b).all()


def test_control_validation():
    with pytest.raises(ValueError):
        generate_synthetic_control(n_per_class=0)
    with pytest.raises(ValueError):
        generate_synthetic_control(length=1)
    assert control_chart_sizeof(None) == 480


# --- sample data ----------------------------------------------------------------

def test_sample_data_components():
    X, labels = generate_sample_data(np.random.default_rng(0))
    assert X.shape == (1000, 2)
    counts = np.bincount(labels)
    assert list(counts) == [c for _m, _s, c in SAMPLE_COMPONENTS]
    # The sigma=0.1 component is tightly packed around (0, 2).
    tight = X[labels == 2]
    assert np.allclose(tight.mean(axis=0), [0.0, 2.0], atol=0.05)
    assert tight.std(axis=0).max() < 0.2
    assert sample_sizeof(None) == 32


# --- text corpus -----------------------------------------------------------------

def test_corpus_size_close_to_request():
    lines = generate_corpus(50_000, rng=np.random.default_rng(0))
    total = sum(len(line) + 1 for line in lines)
    assert 50_000 <= total < 55_000


def test_corpus_zipf_skew():
    lines = generate_corpus(100_000, rng=np.random.default_rng(0))
    words = " ".join(lines).split()
    from collections import Counter
    counts = Counter(words).most_common()
    # Zipf: the most common word is much more frequent than the median one.
    assert counts[0][1] > 20 * counts[len(counts) // 2][1]


def test_corpus_reproducible_and_sizeof():
    a = generate_corpus(10_000, rng=np.random.default_rng(3))
    b = generate_corpus(10_000, rng=np.random.default_rng(3))
    assert a == b
    assert corpus_sizeof("hello") == 6


def test_corpus_validation():
    with pytest.raises(ValueError):
        generate_corpus(0)


# --- teragen --------------------------------------------------------------------

def test_teragen_records():
    records = teragen(100, rng=np.random.default_rng(0))
    assert len(records) == 100
    assert all(len(r.key) == 10 for r in records)
    assert [r.row for r in records] == list(range(100))
    assert tera_sizeof(records[0]) == 100


def test_teragen_keys_random_and_sortable():
    records = teragen(1000, rng=np.random.default_rng(0))
    keys = [r.key for r in records]
    assert len(set(keys)) > 990
    assert sorted(keys)  # bytes sort fine


def test_tera_record_validation():
    with pytest.raises(ValueError):
        TeraRecord(b"short", 0)
    with pytest.raises(ValueError):
        teragen(-1)
    assert records_for_bytes(1000) == 10
    assert records_for_bytes(5) == 1
