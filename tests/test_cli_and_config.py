"""Tests for the CLI entry point and the configuration dataclasses."""

import pytest

from repro import constants as C
from repro.cli import build_parser, main
from repro.config import HadoopConfig, HostConfig, PlatformConfig, VMConfig
from repro.errors import ConfigError


# --- CLI -------------------------------------------------------------------

def test_parser_knows_all_experiments():
    parser = build_parser()
    for name in ("table1", "fig2", "fig3", "fig4", "fig5", "table2",
                 "fig6", "fig7", "fig8", "schedule", "telemetry", "all"):
        args = parser.parse_args([name])
        assert args.experiment == name


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_cli_runs_fig8(capsys):
    assert main(["fig8", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out
    assert "sample-data" in out
    assert "+--" in out  # ASCII panel border


def test_cli_quick_fig6(capsys):
    assert main(["fig6", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "fig6" in out and "canopy_s" in out


def test_cli_seed_changes_results(capsys):
    main(["fig8", "--seed", "1"])
    first = capsys.readouterr().out
    main(["fig8", "--seed", "2"])
    second = capsys.readouterr().out
    assert first != second


# --- configs -----------------------------------------------------------------

def test_hadoop_config_defaults_match_paper_era():
    config = HadoopConfig()
    assert config.dfs_block_size == 64 * C.MiB
    assert config.dfs_replication >= 1
    assert config.map_tasks_maximum == 2
    assert config.reduce_tasks_maximum == 2


def test_hadoop_config_validation():
    with pytest.raises(ConfigError):
        HadoopConfig(dfs_replication=0)
    with pytest.raises(ConfigError):
        HadoopConfig(dfs_block_size=1024)
    with pytest.raises(ConfigError):
        HadoopConfig(map_tasks_maximum=0)
    with pytest.raises(ConfigError):
        HadoopConfig(shuffle_parallel_copies=0)
    with pytest.raises(ConfigError):
        HadoopConfig(task_startup_s=-1.0)
    with pytest.raises(ConfigError):
        HadoopConfig(job_localization_bytes=-1)


def test_hadoop_config_replace_is_pure():
    base = HadoopConfig()
    changed = base.replace(map_tasks_maximum=4)
    assert changed.map_tasks_maximum == 4
    assert base.map_tasks_maximum == 2


def test_platform_config_validation():
    with pytest.raises(ConfigError):
        PlatformConfig(n_hosts=0)
    with pytest.raises(ConfigError):
        PlatformConfig(nfs_bandwidth=0.0)


def test_vm_config_with_memory():
    vm = VMConfig()
    bigger = vm.with_memory(2 * C.GiB)
    assert bigger.memory == 2 * C.GiB
    assert vm.memory == C.DEFAULT_VM_MEMORY


def test_host_config_guest_dram():
    host = HostConfig()
    assert host.guest_dram == host.dram - host.dom0_reserved
    with pytest.raises(ConfigError):
        HostConfig(netback_bandwidth=0.0)


def test_constants_sanity():
    # Relationships the models depend on.
    assert C.XEN_NETBACK_BPS < C.GBIT_ETHERNET_BPS < C.VIRTUAL_BRIDGE_BPS
    assert C.NFS_BPS < C.GBIT_ETHERNET_BPS
    assert 0.0 < C.DISK_CACHE_HIT_RATIO < 1.0
    assert C.MIGRATION_SEND_BUDGET_FACTOR > 1.0
    assert C.DEFAULT_VM_MEMORY == 1024 * C.MiB  # the paper's VM shape
