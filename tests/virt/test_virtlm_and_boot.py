"""Additional virtualization-layer tests: Virt-LM single-VM mode, boot
contention on the NFS image store, and migration-model properties."""

import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro import constants as C
from repro.config import PlatformConfig, VMConfig
from repro.virt import Datacenter


def make_dc(seed=3):
    return Datacenter(PlatformConfig(n_hosts=2, seed=seed))


def boot_vm(dc, name, host_index=0, memory=1024 * C.MiB):
    vm = dc.create_vm(name, dc.machine(host_index), VMConfig(memory=memory),
                      jittered_dirty_rate=False)
    dc.instant_boot(vm)
    return vm


# --- Virt-LM single-VM mode ------------------------------------------------

def test_virtlm_single_vm_benchmark():
    dc = make_dc()
    vm = boot_vm(dc, "solo")
    event = dc.virtlm.migrate_vm(vm, dc.machine(1))
    dc.run()
    record = event.value
    assert record.vm == "solo"
    assert record.migration_time_s > 0
    assert record.downtime_s > 0
    assert record.overhead_ratio >= 1.0  # at least the full memory was sent


def test_migration_record_rounds_account_for_all_bytes():
    dc = make_dc()
    vm = boot_vm(dc, "acct")
    event = dc.virtlm.migrate_vm(vm, dc.machine(1))
    dc.run()
    record = event.value
    sent_in_rounds = sum(r.sent_bytes for r in record.rounds)
    # Total = pre-copy rounds + the final stop-and-copy residue.
    assert record.total_sent_bytes >= sent_in_rounds
    assert record.total_sent_bytes - sent_in_rounds <= \
        record.rounds[-1].dirtied_bytes + 1


# --- boot path -----------------------------------------------------------------

def test_boot_time_includes_nfs_fetch():
    dc = make_dc()
    vm = dc.create_vm("boots", dc.machine(0))
    event = dc.boot_vm(vm)
    dc.run()
    from repro.virt.hypervisor import GUEST_BOOT_S
    assert event.value > GUEST_BOOT_S


def test_parallel_boots_contend_on_nfs():
    # 12 VMs booting at once fetch images from the same NFS server: the
    # last boot completes later than a lone boot would.
    dc_single = make_dc()
    vm = dc_single.create_vm("one", dc_single.machine(0))
    done = dc_single.boot_vm(vm)
    dc_single.run()
    lone = done.value

    dc_many = make_dc()
    events = []
    for i in range(12):
        vm = dc_many.create_vm(f"many{i}", dc_many.machine(0))
        events.append(dc_many.boot_vm(vm))
    dc_many.run()
    slowest = max(e.value for e in events)
    assert slowest > lone * 1.5


def test_boot_requires_placement():
    dc = make_dc()
    from repro.errors import VMStateError
    from repro.virt.vm import VirtualMachine
    vm = VirtualMachine("ghost", VMConfig(), dc.sim, dc.fss, dc.fabric)
    with pytest.raises(VMStateError):
        dc.hypervisors["pm0"].boot(vm)


# --- migration-model properties -----------------------------------------------

@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sampled_from([256, 512, 768, 1024, 2048]))
def test_property_idle_migration_time_scales_with_memory(mem_mib):
    dc = make_dc()
    small = boot_vm(dc, "small", memory=128 * C.MiB)
    big = boot_vm(dc, "big", memory=mem_mib * C.MiB)
    ev_small = dc.virtlm.migrate_vm(small, dc.machine(1))
    dc.run()
    ev_big = dc.virtlm.migrate_vm(big, dc.machine(1))
    dc.run()
    assert ev_big.value.migration_time_s > ev_small.value.migration_time_s
    # Idle downtime stays within a narrow band regardless of memory.
    ratio = ev_big.value.downtime_s / ev_small.value.downtime_s
    assert 0.3 < ratio < 3.0


def test_sequential_migrations_do_not_interfere():
    # Two identical VMs migrated one after the other take identical times
    # (determinism + no residual state).
    dc = make_dc()
    a = boot_vm(dc, "a")
    b = boot_vm(dc, "b")
    ev_a = dc.virtlm.migrate_vm(a, dc.machine(1))
    dc.run()
    ev_b = dc.virtlm.migrate_vm(b, dc.machine(1))
    dc.run()
    assert ev_a.value.migration_time_s == pytest.approx(
        ev_b.value.migration_time_s, rel=1e-9)


def test_concurrent_migrations_share_the_wire():
    dc = make_dc()
    vms = [boot_vm(dc, f"c{i}") for i in range(4)]
    event = dc.virtlm.migrate_cluster(vms, dc.machine(1), concurrent=True)
    dc.run()
    report = event.value
    # Four concurrent streams over one NIC pair: each takes ~4x the solo
    # time, but the wall clock beats 4 sequential migrations.
    solo_floor = 1024 * C.MiB / C.GBIT_ETHERNET_BPS
    assert min(report.migration_times) > 2.0 * solo_floor
    assert report.overall_migration_time_s < 4.0 * (solo_floor * 4)
