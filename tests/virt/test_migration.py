"""Unit tests for the dirty-memory model and pre-copy live migration."""

import pytest

from repro import constants as C
from repro.config import PlatformConfig, VMConfig
from repro.errors import ConfigError, MigrationError
from repro.virt import Datacenter, DirtyMemoryModel, VMState


@pytest.fixture()
def dc():
    return Datacenter(PlatformConfig(n_hosts=2, seed=7))


def running_vm(dc, name="vm0", host_index=0, memory=1024 * C.MiB,
               jitter=False):
    vm = dc.create_vm(name, dc.machine(host_index),
                      VMConfig(memory=memory), jittered_dirty_rate=jitter)
    dc.instant_boot(vm)
    return vm


# --- DirtyMemoryModel ---------------------------------------------------------

def test_dirty_model_idle_rate():
    m = DirtyMemoryModel(1024 * C.MiB, idle_rate=2.0, busy_rate_per_task=10.0)
    assert m.dirty_rate(0) == 2.0
    assert m.dirty_rate(3) == 32.0


def test_dirty_model_wws_ceiling():
    m = DirtyMemoryModel(1000, idle_rate=100.0, wws_fraction=0.1)
    # 100 B/s for 100 s = 10_000 B raw, capped at WWS = 100 B.
    assert m.dirtied_during(100.0, 0) == 100.0


def test_dirty_model_validation():
    with pytest.raises(ConfigError):
        DirtyMemoryModel(0)
    with pytest.raises(ConfigError):
        DirtyMemoryModel(1000, wws_fraction=0.0)
    with pytest.raises(ConfigError):
        DirtyMemoryModel(1000, idle_rate=-1.0)
    m = DirtyMemoryModel(1000)
    with pytest.raises(ConfigError):
        m.dirty_rate(-1)
    with pytest.raises(ConfigError):
        m.dirtied_during(-1.0, 0)


# --- single-VM migration --------------------------------------------------------

def test_idle_migration_completes_and_rehomes(dc):
    vm = running_vm(dc)
    ev = dc.migrator.migrate(vm, dc.machine(1))
    dc.run()
    record = ev.value
    assert vm.host is dc.machine(1)
    assert vm.state is VMState.RUNNING
    assert "vm0" in dc.machine(1).vms
    assert "vm0" not in dc.machine(0).vms
    assert record.stop_reason == "converged"
    assert record.total_sent_bytes >= vm.config.memory


def test_idle_migration_time_tracks_memory_over_bandwidth(dc):
    vm = running_vm(dc)
    ev = dc.migrator.migrate(vm, dc.machine(1))
    dc.run()
    record = ev.value
    floor = vm.config.memory / C.GBIT_ETHERNET_BPS
    assert record.migration_time_s > floor
    assert record.migration_time_s < 3.0 * floor + 5.0


def test_larger_memory_longer_migration(dc):
    small = running_vm(dc, "small", memory=512 * C.MiB)
    big = running_vm(dc, "big", memory=1024 * C.MiB)
    ev_small = dc.migrator.migrate(small, dc.machine(1))
    dc.run()
    t_small = ev_small.value.migration_time_s
    ev_big = dc.migrator.migrate(big, dc.machine(1))
    dc.run()
    t_big = ev_big.value.migration_time_s
    assert t_big > 1.5 * t_small


def test_idle_downtime_small_and_memory_independent(dc):
    small = running_vm(dc, "small", memory=512 * C.MiB)
    big = running_vm(dc, "big", memory=1024 * C.MiB)
    ev_s = dc.migrator.migrate(small, dc.machine(1))
    dc.run()
    ev_b = dc.migrator.migrate(big, dc.machine(1))
    dc.run()
    # Paper observation (i): downtime has no causal relation to memory size.
    assert ev_s.value.downtime_s < 0.2
    assert ev_b.value.downtime_s < 0.2
    ratio = ev_b.value.downtime_s / ev_s.value.downtime_s
    assert 0.2 < ratio < 5.0


def test_busy_vm_much_longer_downtime(dc):
    idle = running_vm(dc, "idle")
    busy = running_vm(dc, "busy")
    # Emulate a running Wordcount: two long tasks keep activity at 2.
    busy.compute(10_000.0)
    busy.compute(10_000.0)
    ev_idle = dc.migrator.migrate(idle, dc.machine(1))
    dc.run(until=200.0)
    assert ev_idle.triggered
    ev_busy = dc.migrator.migrate(busy, dc.machine(1))
    dc.run(until=2000.0)
    assert ev_busy.triggered
    idle_rec, busy_rec = ev_idle.value, ev_busy.value
    assert busy_rec.downtime_s > 5.0 * idle_rec.downtime_s
    assert busy_rec.migration_time_s > idle_rec.migration_time_s
    assert busy_rec.stop_reason in ("send-budget", "round-budget")


def test_migration_rejects_same_host(dc):
    vm = running_vm(dc)
    with pytest.raises(MigrationError):
        dc.migrator.migrate(vm, dc.machine(0))


def test_migration_rejects_stopped_vm(dc):
    vm = running_vm(dc)
    vm.stop()
    with pytest.raises(MigrationError):
        dc.migrator.migrate(vm, dc.machine(1))


def test_migration_rejects_full_destination():
    dc = Datacenter(PlatformConfig(n_hosts=2))
    dst = dc.machine(1)
    capacity = dst.config.guest_dram // (1024 * C.MiB)
    for i in range(capacity):
        dc.create_vm(f"filler{i}", dst)
    vm = running_vm(dc, "mover")
    with pytest.raises(MigrationError):
        dc.migrator.migrate(vm, dst)


def test_migration_precopy_rounds_geometric(dc):
    vm = running_vm(dc)
    ev = dc.migrator.migrate(vm, dc.machine(1))
    dc.run()
    rounds = ev.value.rounds
    assert rounds[0].sent_bytes == vm.config.memory
    # Idle VM converges: rounds shrink monotonically.
    sent = [r.sent_bytes for r in rounds]
    assert sent == sorted(sent, reverse=True)
    assert ev.value.n_rounds < 10


def test_migration_emits_trace(dc):
    vm = running_vm(dc)
    dc.migrator.migrate(vm, dc.machine(1))
    dc.run()
    assert dc.tracer.count("migration.start") == 1
    assert dc.tracer.count("migration.round") >= 1
    assert dc.tracer.last("migration.end")["downtime"] > 0


# --- Virt-LM cluster migration --------------------------------------------------

def make_cluster(dc, n=4, memory=512 * C.MiB, jitter=True):
    vms = [running_vm(dc, f"node{i}", host_index=0, memory=memory,
                      jitter=jitter) for i in range(n)]
    return vms


def test_virtlm_sequential_cluster_migration(dc):
    vms = make_cluster(dc, n=4)
    ev = dc.virtlm.migrate_cluster(vms, dc.machine(1), label="idle")
    dc.run()
    report = ev.value
    assert len(report.records) == 4
    assert all(vm.host is dc.machine(1) for vm in vms)
    # Sequential: overall time is at least the sum of individual times.
    assert report.overall_migration_time_s == pytest.approx(
        sum(report.migration_times), rel=0.01)
    assert report.overall_downtime_s == pytest.approx(
        sum(report.downtimes))


def test_virtlm_concurrent_cluster_migration(dc):
    vms = make_cluster(dc, n=4)
    ev = dc.virtlm.migrate_cluster(vms, dc.machine(1), label="gang",
                                   concurrent=True)
    dc.run()
    report = ev.value
    assert len(report.records) == 4
    # Concurrent migrations share the NIC: wall clock is far below the sum.
    assert report.overall_migration_time_s < 0.9 * sum(report.migration_times)


def test_virtlm_empty_cluster_rejected(dc):
    with pytest.raises(MigrationError):
        dc.virtlm.migrate_cluster([], dc.machine(1))


def test_busy_cluster_downtime_varies_more_than_idle(dc):
    idle = make_cluster(dc, n=4, jitter=True)
    ev = dc.virtlm.migrate_cluster(idle, dc.machine(1), label="idle")
    dc.run()
    idle_report = ev.value

    busy = [running_vm(dc, f"busy{i}", host_index=0, jitter=True)
            for i in range(4)]
    for i, vm in enumerate(busy):
        for _ in range(1 + i % 3):  # imbalanced load across nodes
            vm.compute(50_000.0)
    ev = dc.virtlm.migrate_cluster(busy, dc.machine(1), label="busy")
    dc.run(until=dc.now + 5000.0)
    assert ev.triggered
    busy_report = ev.value
    assert busy_report.downtime_spread() > idle_report.downtime_spread()
    assert busy_report.overall_downtime_s > 3.0 * idle_report.overall_downtime_s
