"""Tests for resource-reserved (rate-capped) live migration."""


import pytest

from repro import constants as C
from repro.config import PlatformConfig, VMConfig
from repro.errors import MigrationError
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.virt import Datacenter
from repro.workloads.wordcount import (lines_as_records, line_record_sizeof,
                                       wordcount_job)


def test_rate_cap_validation():
    dc = Datacenter(PlatformConfig(n_hosts=2))
    vm = dc.create_vm("v", dc.machine(0))
    dc.instant_boot(vm)
    with pytest.raises(MigrationError):
        dc.migrator.migrate(vm, dc.machine(1), rate_cap_bps=0)


def test_capped_migration_is_slower():
    dc = Datacenter(PlatformConfig(n_hosts=2, seed=1))
    a = dc.create_vm("a", dc.machine(0), VMConfig(memory=512 * C.MiB),
                     jittered_dirty_rate=False)
    b = dc.create_vm("b", dc.machine(0), VMConfig(memory=512 * C.MiB),
                     jittered_dirty_rate=False)
    dc.instant_boot(a)
    dc.instant_boot(b)
    free = dc.migrator.migrate(a, dc.machine(1))
    dc.run()
    capped = dc.migrator.migrate(b, dc.machine(1),
                                 rate_cap_bps=30e6)
    dc.run()
    assert capped.value.migration_time_s > 2.0 * free.value.migration_time_s


def test_reservation_reduces_job_interference():
    """The CLOUD'11 result this feature reproduces: capping the migration
    stream slows the migration but protects the running workload."""

    def run(rate_cap):
        platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=9))
        cluster = platform.provision_cluster("r", ClusterSpec.single_host(8))
        lines = ["ups downs lefts rights " * 15] * 3000
        platform.upload(cluster, "/in", lines_as_records(lines),
                        sizeof=lambda r: (len(r[1]) + 1) * 80, timed=False)
        job = wordcount_job("/in", "/out", n_reduces=4, volume_scale=80)
        job_event = platform.runners[cluster.name].submit(job)
        dc = platform.datacenter
        dc.run(until=3.0)
        migration = dc.virtlm.migrate_cluster(cluster.vms, dc.machine(1),
                                              rate_cap_bps=rate_cap)
        dc.sim.run_until(job_event)
        job_elapsed = job_event.value.elapsed
        dc.sim.run_until(migration)
        return job_elapsed, migration.value.overall_migration_time_s

    job_free, mig_free = run(rate_cap=None)
    job_capped, mig_capped = run(rate_cap=25e6)
    # The reservation trades migration speed for workload protection.
    assert mig_capped > mig_free
    assert job_capped < job_free


def test_capped_cluster_migration_still_correct():
    platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=2))
    cluster = platform.provision_cluster("c", ClusterSpec.single_host(4))
    dc = platform.datacenter
    event = dc.virtlm.migrate_cluster(cluster.vms, dc.machine(1),
                                      rate_cap_bps=40e6)
    dc.sim.run_until(event)
    assert all(vm.host is dc.machine(1) for vm in cluster.vms)
    assert len(event.value.records) == 4
