"""Unit tests for physical machines, VMs, and the hypervisor."""

import pytest

from repro import constants as C
from repro.config import HostConfig, PlatformConfig, VMConfig
from repro.errors import ConfigError, PlacementError, VMStateError
from repro.virt import Datacenter, VMState


@pytest.fixture()
def dc():
    return Datacenter(PlatformConfig(n_hosts=2, seed=42))


def test_datacenter_builds_hosts_and_nfs(dc):
    assert len(dc.machines) == 2
    assert dc.machines[0].name == "pm0"
    assert "base" in dc.image_store.images
    assert dc.machines[0].config.cores == C.DEFAULT_HOST_CORES


def test_vm_placement_reserves_dram(dc):
    host = dc.machine(0)
    free_before = host.dram_free
    vm = dc.create_vm("vm0", host)
    assert host.dram_free == free_before - vm.config.memory
    assert host.vms["vm0"] is vm
    assert vm.state is VMState.DEFINED


def test_placement_rejects_memory_overcommit():
    # 30 GiB guest DRAM holds at most 30 VMs of 1 GiB.
    dc = Datacenter(PlatformConfig(n_hosts=1))
    host = dc.machine(0)
    capacity = host.config.guest_dram // (1024 * C.MiB)
    for i in range(capacity):
        dc.create_vm(f"vm{i}", host)
    with pytest.raises(PlacementError):
        dc.create_vm("one-too-many", host)


def test_cpu_oversubscription_allowed():
    # CPU (unlike memory) may be oversubscribed: 16 single-VCPU VMs fit on
    # an 8-core host.
    dc = Datacenter(PlatformConfig(n_hosts=1, host=HostConfig(cores=8)))
    host = dc.machine(0)
    for i in range(16):
        dc.create_vm(f"vm{i}", host)
    assert host.oversubscribed
    assert host.n_resident_vcpus == 16


def test_duplicate_vm_name_rejected(dc):
    dc.create_vm("vm0", dc.machine(0))
    with pytest.raises(ConfigError):
        dc.create_vm("vm0", dc.machine(1))


def test_boot_streams_image_and_runs(dc):
    vm = dc.create_vm("vm0", dc.machine(0))
    boot = dc.boot_vm(vm)
    dc.run()
    assert vm.state is VMState.RUNNING
    assert boot.value > 18.0  # boot delay plus NFS fetch time
    assert dc.tracer.count("vm.boot.end") == 1


def test_instant_boot(dc):
    vm = dc.create_vm("vm0", dc.machine(0))
    dc.instant_boot(vm)
    assert vm.state is VMState.RUNNING


def test_compute_requires_running(dc):
    vm = dc.create_vm("vm0", dc.machine(0))
    with pytest.raises(VMStateError):
        vm.compute(1.0)


def test_compute_single_task_one_core(dc):
    vm = dc.create_vm("vm0", dc.machine(0))
    dc.instant_boot(vm)
    done = vm.compute(5.0)
    dc.run()
    assert dc.now == pytest.approx(5.0)
    assert done.value == 5.0
    assert vm.cpu_seconds == pytest.approx(5.0)


def test_two_tasks_share_one_vcpu(dc):
    vm = dc.create_vm("vm0", dc.machine(0))
    dc.instant_boot(vm)
    vm.compute(5.0)
    vm.compute(5.0)
    dc.run()
    # 1 VCPU shared by 2 tasks -> 10 s total.
    assert dc.now == pytest.approx(10.0)


def test_sixteen_vms_oversubscribe_eight_cores():
    dc = Datacenter(PlatformConfig(n_hosts=1, host=HostConfig(cores=8)))
    host = dc.machine(0)
    vms = [dc.create_vm(f"vm{i}", host) for i in range(16)]
    for vm in vms:
        dc.instant_boot(vm)
        vm.compute(4.0)
    dc.run()
    # 16 VCPU demands on 8 cores -> each gets half a core -> 8 s.
    assert dc.now == pytest.approx(8.0)


def test_sixteen_vms_on_hyperthreaded_host_not_oversubscribed(dc):
    # The paper's T710 exposes 16 hardware threads: its 'normal' 16-VM
    # cluster is NOT CPU-oversubscribed.
    host = dc.machine(0)
    vms = [dc.create_vm(f"vm{i}", host) for i in range(16)]
    assert not host.oversubscribed
    for vm in vms:
        dc.instant_boot(vm)
        vm.compute(4.0)
    dc.run()
    assert dc.now == pytest.approx(4.0)


def test_activity_tracks_inflight_tasks(dc):
    vm = dc.create_vm("vm0", dc.machine(0))
    dc.instant_boot(vm)
    vm.compute(4.0)
    vm.compute(4.0)
    dc.run(until=1.0)  # let the task processes start
    assert vm.activity == 2
    dc.run()
    assert vm.activity == 0


def test_disk_io_is_nfs_backed(dc):
    # VM images live on the NFS server: the page-cache-miss fraction of any
    # disk I/O drains at NFS speed, the rest at memory speed.
    vm = dc.create_vm("vm0", dc.machine(0))
    dc.instant_boot(vm)
    vm.disk_io(C.NFS_BPS)
    dc.run()
    expected = ((1.0 - C.DISK_CACHE_HIT_RATIO)
                + C.DISK_CACHE_HIT_RATIO * C.NFS_BPS / C.PAGE_CACHE_BPS)
    assert dc.now == pytest.approx(expected, rel=1e-6)
    assert vm.disk_bytes == C.NFS_BPS


def test_disk_contention_between_vms_shares_nfs(dc):
    # Even VMs on *different* hosts share the one NFS server.
    a = dc.create_vm("a", dc.machine(0))
    b = dc.create_vm("b", dc.machine(1))
    dc.instant_boot(a)
    dc.instant_boot(b)
    a.disk_io(C.NFS_BPS)
    b.disk_io(C.NFS_BPS)
    dc.run()
    miss = 1.0 - C.DISK_CACHE_HIT_RATIO
    # The two miss streams contend on the NFS server: 2 * miss seconds.
    assert dc.now > 2 * miss * 0.95
    assert dc.now < 2 * miss + 0.2


def test_disk_io_crosses_host_nic(dc):
    # NFS-backed disk traffic occupies the host's physical NIC.
    vm = dc.create_vm("vm0", dc.machine(0))
    dc.instant_boot(vm)
    vm.disk_io(C.NFS_BPS * 10)
    dc.run(until=1.0)
    assert dc.machine(0).net.nic.current_load > 0


def test_stop_evicts_and_frees_dram(dc):
    host = dc.machine(0)
    vm = dc.create_vm("vm0", host)
    dc.instant_boot(vm)
    free = host.dram_free
    vm.stop()
    assert vm.state is VMState.STOPPED
    assert "vm0" not in host.vms
    assert host.dram_free == free + vm.config.memory


def test_vm_config_validation():
    with pytest.raises(ConfigError):
        VMConfig(vcpus=0)
    with pytest.raises(ConfigError):
        VMConfig(memory=1)


def test_host_config_validation():
    with pytest.raises(ConfigError):
        HostConfig(cores=0)
    with pytest.raises(ConfigError):
        HostConfig(dram=1 * C.GiB, dom0_reserved=2 * C.GiB)


def test_machine_index_out_of_range(dc):
    with pytest.raises(PlacementError):
        dc.machine(5)
