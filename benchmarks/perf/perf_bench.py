"""Fair-share engine perf harness — the repo's bench trajectory.

Runs fixed, seeded workloads (scale-stress Wordcount, a TeraSort shuffle
storm, a chaos fault-injection run) twice:

* **incremental** — the shipped connected-component engine;
* **legacy** — an in-process emulation of the pre-incremental hot paths:
  whole-graph reference fill, all-flows min-horizon scan, no timer
  cancellation, unmemoised ``stable_hash`` partitioning, linear-scan range
  partitioning, ``setdefault``-based grouping, uncached network routes —
  all installed by monkeypatching for the duration of the run.

Both engines must produce the *identical* simulated elapsed time — the
determinism invariant — which the harness asserts hard.  It then writes
``BENCH_fairshare.json`` with wall-clock, kernel events processed, max
heap size, rebalance counts and flow-visit counts, so every future PR has
a perf trajectory to compare against.

Usage:
    PYTHONPATH=src python benchmarks/perf/perf_bench.py [--quick]
        [--no-legacy] [--out BENCH_fairshare.json]
        [--baseline-tree /path/to/seed/checkout]
        [--check benchmarks/perf/baselines.json | --write-baselines ...]

``--observatory`` switches the harness to the observability overhead
measurement instead: the same seeded Wordcount runs with the cluster
observatory's detectors off and on, the simulated outputs and the
fair-share engine's deterministic counters must stay bit-identical
(the detectors are read-only by construction), and the observing
overhead (CPU time, detectors on vs off) is recorded in
``BENCH_observatory.json`` (<5% target).

``--timeseries`` is the analogous overhead measurement for the
historical metrics store: the same Wordcount with the registry sampler
off and on, interleaved repeats, bit-identical sim outputs and engine
counters asserted, store digest pinned across repeats, and the CPU cost
of keeping history recorded in ``BENCH_timeseries.json`` (<5% target,
warn-only).

``--baseline-tree`` additionally runs every workload in a subprocess
against a *real* pre-PR checkout (e.g. ``git worktree add /tmp/seed
<seed-commit>``), records its wall clock as ``baseline.wall_s``, and
asserts the simulated elapsed time is bit-identical — the strongest form
of the determinism claim, measured against actual history rather than an
emulation.

``--check`` compares the run's deterministic counters (simulated elapsed,
kernel events, rebalances, flow visits, completions, chaos digest) against
a checked-in baseline file and exits non-zero on any mismatch; wall-clock
is never checked (warn-only), machines differ.

``--scale`` climbs the 16/100/500/1,000-VM rack-topology ladder, one
fresh worker process per rung via the parallel fabric
(``repro.parallel.run_sharded`` with ``tasks_per_worker=1``); ``--jobs N``
runs rungs concurrently, with bit-identical results either way.
``--parallel`` runs the same fuzz campaign serial and sharded, asserts
the corpus and campaign digests are byte-identical, and records the wall
speedup in ``BENCH_parallel.json`` — the speedup is reported, never
gated (machines differ; CI gates the digests).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import subprocess
import sys
import time
from pathlib import Path

from repro import constants as C
from repro.chaos import ChaosInjector
from repro.config import PlatformConfig
from repro.datasets.text import generate_corpus
from repro.experiments import chaos_faults
from repro.mapreduce import api as mr_api
from repro.mapreduce import runner as mr_runner
from repro.mapreduce.api import stable_hash
from repro.net.topology import NetworkFabric
from repro.platform import VHadoopPlatform

try:
    from repro.config import TopologySpec
    from repro.platform import ClusterSpec
except ImportError:  # pragma: no cover - pre-rack --baseline-tree probe
    # A --baseline-tree probe runs this harness against a checkout that
    # predates the ClusterSpec API; map the one spec the probed workloads
    # use onto the legacy helper (scale mode never probes baselines).
    from repro.platform import balanced_placement

    TopologySpec = None

    class ClusterSpec:  # type: ignore[no-redef]
        @staticmethod
        def spread(n_vms, hosts=None):
            return balanced_placement(n_vms, n_hosts=hosts)
try:
    from repro.parallel import run_sharded
except ImportError:  # pragma: no cover - pre-parallel --baseline-tree probe
    run_sharded = None  # probes only run WORKLOADS, never the ladder
from repro.sim.fairshare import _EPS, _MIN_DT, FairShareSystem
from repro.workloads import wordcount as wc_mod
from repro.workloads.terasort import run_terasort
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

#: Deterministic per-workload counters compared by --check.
CHECKED_KEYS = ("events_processed", "rebalance_count", "flow_visits",
                "completed_flows")


# -- legacy engine emulation -------------------------------------------------

def _counting_maxmin_rates(fss, flows):
    """The pre-incremental global progressive fill, with visit counting.

    Arithmetic is copied verbatim from the reference oracle
    (``repro.sim.fairshare._maxmin_rates``); the counters mirror the flow
    inspections that implementation performs: every filling round re-counts
    each resource's unfrozen flows, re-scans all caps, and re-scans
    saturated resources' flow sets.
    """
    unfrozen = set(flows)
    rates = {f: 0.0 for f in unfrozen}
    if not unfrozen:
        return rates
    frozen_load = {}
    for flow in unfrozen:
        for res in flow.path:
            frozen_load.setdefault(res, 0.0)
    level = 0.0
    while unfrozen:
        sat_levels = {}
        for res, loaded in frozen_load.items():
            fss.flow_visits += len(res._flows)
            n = sum(1 for f in res._flows if f in unfrozen)
            if n:
                sat_levels[res] = (res.capacity - loaded) / n
        fss.flow_visits += len(unfrozen)  # the min-cap scan
        res_level = min(sat_levels.values(), default=math.inf)
        min_cap = min((f.cap for f in unfrozen), default=math.inf)
        next_level = min(res_level, min_cap)
        level = max(level, next_level)
        newly_frozen = set()
        if min_cap <= next_level + _EPS:
            fss.flow_visits += len(unfrozen)
            newly_frozen.update(f for f in unfrozen if f.cap <= level + _EPS)
        for res, sat in sat_levels.items():
            if sat <= next_level + _EPS:
                fss.flow_visits += len(res._flows)
                newly_frozen.update(f for f in res._flows if f in unfrozen)
        if not newly_frozen:  # pragma: no cover - numerical safety net
            newly_frozen = set(unfrozen)
        for flow in newly_frozen:
            rates[flow] = min(level, flow.cap)
            unfrozen.discard(flow)
            for res in flow.path:
                frozen_load[res] += rates[flow]
    return rates


def _legacy_rebalance(self, seed_resources):
    """Seed-equivalent global rebalance + all-flows min-horizon scan."""
    now = self.sim.now
    self.rebalance_count += 1
    rates = _counting_maxmin_rates(self, self._flows)
    resources = set()
    for flow in self._flows:
        flow.rate = rates[flow]
        resources.update(flow.path)
    for res in resources:
        res._set_load(sum(f.rate for f in res._flows), now)
    self._timer_version += 1
    version = self._timer_version
    horizon = math.inf
    for flow in self._flows:
        if flow.rate > _EPS and math.isfinite(flow.remaining):
            horizon = min(horizon, flow.remaining / flow.rate)
    if not math.isfinite(horizon):
        return
    timer = self.sim.timeout(max(horizon, _MIN_DT))
    timer.callbacks.append(lambda _ev: self._on_timer(version))


def _legacy_hash_partition(self, key, n_partitions):
    """Pre-memoisation HashPartitioner: one crc32 per record."""
    return stable_hash(key) % n_partitions


def _legacy_range_partition(self, key, n_partitions):
    """Pre-bisect RangePartitioner: linear boundary walk, same tie rule."""
    index = 0
    for boundary in self.boundaries[:n_partitions - 1]:
        if key >= boundary:
            index += 1
        else:
            break
    return index


def _legacy_group_by_key(pairs):
    """Pre-optimisation sort-and-group (``setdefault`` per pair)."""
    groups = {}
    for key, value in pairs:
        groups.setdefault(key, []).append(value)

    def order(item):
        key = item[0]
        return (type(key).__name__, repr(key)) if not isinstance(
            key, (int, float, str, bytes, tuple)) else (type(key).__name__,
                                                        key)
    return sorted(groups.items(), key=order)


def _legacy_wordcount_map(self, key, value, context):
    """Pre-hoist WordCount mapper (attribute lookup per emit)."""
    for word in str(value).split():
        context.emit(word, 1)


_cached_path = NetworkFabric.path


def _legacy_path(self, src, dst):
    """Route resolution without the cache: recompute on every transfer."""
    self._path_cache.clear()
    return _cached_path(self, src, dst)


class _engine:
    """Context manager selecting the engine + hot-path implementations.

    ``legacy=True`` swaps in value-identical but pre-optimisation
    implementations of everything this PR touched that is patchable from
    outside: the fair-share rebalance, both partitioners, the reduce-side
    grouping, the WordCount mapper inner loop, and the route cache.
    (The map-side spill fusion is inline in the runner and cannot be
    toggled, so the emulation still *under*states the true pre-PR cost —
    use ``--baseline-tree`` for the measurement against real history.)
    """

    def __init__(self, legacy: bool):
        self.legacy = legacy
        self._patches = (
            (FairShareSystem, "_rebalance", _legacy_rebalance),
            (mr_api.HashPartitioner, "partition", _legacy_hash_partition),
            (mr_api.RangePartitioner, "partition", _legacy_range_partition),
            (mr_api, "group_by_key", _legacy_group_by_key),
            (mr_runner, "group_by_key", _legacy_group_by_key),
            (wc_mod.WordCountMapper, "map", _legacy_wordcount_map),
            (NetworkFabric, "path", _legacy_path),
        )

    def __enter__(self):
        if self.legacy:
            self._saved = [(obj, name, obj.__dict__[name])
                           for obj, name, _ in self._patches]
            for obj, name, impl in self._patches:
                setattr(obj, name, impl)
        return self

    def __exit__(self, *exc):
        if self.legacy:
            for obj, name, impl in self._saved:
                setattr(obj, name, impl)
        return False


# -- workloads ---------------------------------------------------------------

def _counters(platform, wall_s):
    # getattr with defaults: under --baseline-tree the probe subprocess
    # runs this against a pre-PR checkout whose classes lack the counters.
    sim = platform.sim
    fss = platform.datacenter.fss
    return {
        "wall_s": round(wall_s, 3),
        "events_processed": getattr(sim, "events_processed", None),
        "max_heap_size": getattr(sim, "max_heap_size", None),
        "cancelled_pruned": getattr(sim, "cancelled_pruned", None),
        "rebalance_count": getattr(fss, "rebalance_count", None),
        "flow_visits": getattr(fss, "flow_visits", None),
        "flow_visits_global_model": getattr(fss, "flow_visits_global", None),
        "timer_cancellations": getattr(fss, "timer_cancellations", None),
        "max_component_flows": getattr(fss, "max_component_flows", None),
        "completed_flows": getattr(fss, "completed_count", None),
        "rack_splits": getattr(fss, "rack_splits", None),
    }


def wordcount_scale(quick: bool):
    """The 64-node / 4-host / 2 GB scale-stress Wordcount (quick: 16/2/256MB)."""
    scale = 400
    n_hosts, n_nodes, nbytes, n_reduces = (
        (2, 16, 256 * C.MB, 8) if quick else (4, 64, 2 * C.GB, 16))
    platform = VHadoopPlatform(PlatformConfig(n_hosts=n_hosts, seed=0))
    cluster = platform.provision_cluster(
        "bench", ClusterSpec.spread(n_nodes, hosts=n_hosts))
    lines = generate_corpus(nbytes // scale,
                            rng=platform.datacenter.rng.fresh("corpus"))
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(scale), timed=False)
    job = wordcount_job("/in", "/out", n_reduces=n_reduces,
                        volume_scale=scale)
    t0 = time.time()
    report = platform.run_job(cluster, job)
    wall = time.time() - t0
    return repr(report.elapsed), _counters(platform, wall), {}


def terasort_storm(quick: bool):
    """TeraSort tuned for shuffle pressure: every mapper feeds every reducer."""
    n_hosts, n_nodes, nbytes, n_reduces = (
        (2, 16, 128 * C.MB, 16) if quick else (8, 64, 512 * C.MB, 64))
    platform = VHadoopPlatform(PlatformConfig(n_hosts=n_hosts, seed=0))
    cluster = platform.provision_cluster(
        "storm", ClusterSpec.spread(n_nodes, hosts=n_hosts))
    runner = platform.runner(cluster)
    t0 = time.time()
    tera = run_terasort(runner, cluster, nbytes, n_reduces=n_reduces,
                        seed_tag="storm")
    wall = time.time() - t0
    if not tera.validated:
        raise SystemExit("terasort_storm: TeraValidate failed")
    elapsed = tera.generation_time_s + tera.sort_time_s
    return repr(elapsed), _counters(platform, wall), {}


def chaos_run(quick: bool):
    """Wordcount under the default fault plan (crash, host loss, slow disk)."""
    size_mb = chaos_faults.QUICK_SIZE_MB
    seed = 7
    clean_report, _records = chaos_faults._run_clean(seed, size_mb)
    platform, cluster, job = chaos_faults._build(seed, size_mb)
    runner = platform.runner(cluster)
    plan = chaos_faults.default_plan(cluster, clean_report.elapsed)
    injector = ChaosInjector(cluster, plan)
    t0 = time.time()
    done = runner.submit(job)
    injector.start()
    platform.sim.run_until(done)
    wall = time.time() - t0
    return (repr(done.value.elapsed), _counters(platform, wall),
            {"digest": injector.report.digest()})


WORKLOADS = (("wordcount_scale", wordcount_scale),
             ("terasort_storm", terasort_storm),
             ("chaos", chaos_run))


# -- kernel scale ladder -----------------------------------------------------

#: One rung per target VM count, each a racked ``RxHxV`` topology.  Every
#: rung runs in a fresh subprocess so its peak RSS is attributable, and
#: covers a wordcount slice plus a terasort slice.  ``rss_limit_mb`` is
#: the gated memory ceiling — generous (roughly 3x the measured peak on
#: the reference machine) because the gate exists to catch O(n^2)
#: blowups at 1,000 endpoints, not allocator noise.  Wall time is
#: reported but never gated.
SCALE_RUNGS = (
    {"name": "16", "topology": "1x2x8", "wc_mb": 256, "wc_reduces": 8,
     "tera_mb": 128, "tera_reduces": 16, "rss_limit_mb": 256},
    {"name": "100", "topology": "5x5x4", "wc_mb": 640, "wc_reduces": 16,
     "tera_mb": 256, "tera_reduces": 32, "rss_limit_mb": 384},
    {"name": "500", "topology": "25x5x4", "wc_mb": 1920, "wc_reduces": 32,
     "tera_mb": 512, "tera_reduces": 32, "rss_limit_mb": 768},
    {"name": "1000", "topology": "25x5x8", "wc_mb": 3840, "wc_reduces": 64,
     "tera_mb": 1024, "tera_reduces": 64, "rss_limit_mb": 1024},
)

#: Materialize 1/SCALE of the wordcount corpus; simulate the full volume.
SCALE_VOLUME = 400

#: Deterministic per-rung counters compared by --scale --check.
SCALE_CHECKED_KEYS = ("events_processed", "rebalance_count", "flow_visits",
                      "completed_flows")


def scale_rung(rung: dict) -> dict:
    """Run one ladder rung in-process (subprocess entry)."""
    import resource

    topo = TopologySpec.parse(rung["topology"])
    platform = VHadoopPlatform(PlatformConfig(topology=topo, seed=0))
    cluster = platform.provision_cluster("ladder", ClusterSpec.racked(topo))
    placement = [(vm.name, vm.host.name, vm.host.rack_name)
                 for vm in cluster.vms]
    placement_digest = hashlib.sha256(
        repr(placement).encode("utf-8")).hexdigest()[:16]
    t0 = time.time()
    lines = generate_corpus(rung["wc_mb"] * C.MB // SCALE_VOLUME,
                            rng=platform.datacenter.rng.fresh("corpus"))
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(SCALE_VOLUME), timed=False)
    wc_report = platform.run_job(
        cluster, wordcount_job("/in", "/out",
                               n_reduces=rung["wc_reduces"],
                               volume_scale=SCALE_VOLUME))
    runner = platform.runner(cluster)
    tera = run_terasort(runner, cluster, rung["tera_mb"] * C.MB,
                        n_reduces=rung["tera_reduces"], seed_tag="ladder")
    if not tera.validated:
        raise SystemExit(f"scale rung {rung['name']}: TeraValidate failed")
    wall = time.time() - t0
    counters = _counters(platform, wall)
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "topology": rung["topology"],
        "n_vms": topo.n_vms,
        "racks": topo.racks,
        "placement_digest": placement_digest,
        # Two-element array [wordcount, terasort], JSON round-trip exact;
        # earlier versions stringified the tuple via repr(), which made
        # the baselines grep-hostile and locked consumers to Python.
        "sim_elapsed": [wc_report.elapsed,
                        tera.generation_time_s + tera.sort_time_s],
        "wall_s": counters["wall_s"],
        "events_per_sec": int(counters["events_processed"] / max(wall, 1e-9)),
        "peak_rss_mb": round(peak_rss_mb, 1),
        "rss_limit_mb": rung["rss_limit_mb"],
        "path_cache": platform.datacenter.fabric.path_cache_stats(),
        "counters": counters,
    }


def _rung_by_name(name: str) -> dict:
    for rung in SCALE_RUNGS:
        if rung["name"] == name:
            return rung
    raise SystemExit(f"unknown scale rung {name!r}; "
                     f"have {[r['name'] for r in SCALE_RUNGS]}")


def _ladder_rung_worker(name: str) -> dict:
    """Module-level worker for :func:`repro.parallel.run_sharded`.

    ``SystemExit`` (TeraValidate failure) is converted to a plain
    exception so the fabric records it as an item failure instead of a
    dead worker.
    """
    try:
        return scale_rung(_rung_by_name(name))
    except SystemExit as exc:
        raise RuntimeError(str(exc)) from None


def run_scale_ladder(quick: bool, jobs: int = 1) -> dict:
    """Climb the ladder, one worker process per rung (clean peak RSS).

    Rungs are independent seeded simulations, so they shard over the
    parallel fabric; ``tasks_per_worker=1`` keeps the fresh-process-per-
    rung property the old subprocess loop had, making each rung's peak
    RSS attributable.  With ``jobs>1`` rungs run concurrently — results
    and their merge order are identical regardless (pinned by the scale
    baselines).
    """
    rungs = SCALE_RUNGS[:2] if quick else SCALE_RUNGS
    out = {"generated_by": "benchmarks/perf/perf_bench.py --scale",
           "mode": "quick" if quick else "full",
           "rungs": {}}
    sharded = run_sharded([r["name"] for r in rungs], _ladder_rung_worker,
                          jobs=jobs, tasks_per_worker=1)
    by_name = {item.key: item for item in sharded.results}
    for rung in rungs:
        item = by_name[rung["name"]]
        if not item.ok:
            raise SystemExit(f"scale rung {rung['name']}: {item.error}")
        entry = item.value
        print(f"[scale:{rung['name']}] {entry['topology']}: "
              f"wall {entry['wall_s']}s, "
              f"{entry['events_per_sec']} events/s, "
              f"peak RSS {entry['peak_rss_mb']} MB "
              f"(limit {entry['rss_limit_mb']})")
        if entry["peak_rss_mb"] > rung["rss_limit_mb"]:
            raise SystemExit(
                f"scale rung {rung['name']}: peak RSS "
                f"{entry['peak_rss_mb']} MB exceeds the "
                f"{rung['rss_limit_mb']} MB ceiling")
        out["rungs"][rung["name"]] = entry
    return out


def check_scale(results: dict, baseline_path: Path) -> int:
    """Gate the ladder's deterministic counters; never wall time."""
    baselines = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = 0
    for name, entry in results["rungs"].items():
        want = baselines["rungs"].get(name)
        if want is None:
            print(f"check: no scale baseline for rung {name!r}",
                  file=sys.stderr)
            failures += 1
            continue
        for key in ("sim_elapsed", "placement_digest"):
            if entry[key] != want[key]:
                print(f"check: scale.{name}.{key} {entry[key]} != "
                      f"baseline {want[key]}", file=sys.stderr)
                failures += 1
        for key in SCALE_CHECKED_KEYS:
            if entry["counters"][key] != want["counters"][key]:
                print(f"check: scale.{name}.{key} "
                      f"{entry['counters'][key]} != baseline "
                      f"{want['counters'][key]}", file=sys.stderr)
                failures += 1
    if failures:
        print(f"check: {failures} scale regression(s)", file=sys.stderr)
        return 1
    print("check: all scale-ladder counters match the baselines")
    return 0


def to_scale_baselines(results: dict) -> dict:
    """Keep only what --scale --check compares."""
    slim = {"mode": results["mode"], "rungs": {}}
    for name, entry in results["rungs"].items():
        slim["rungs"][name] = {
            "sim_elapsed": entry["sim_elapsed"],
            "placement_digest": entry["placement_digest"],
            "counters": {k: entry["counters"][k]
                         for k in SCALE_CHECKED_KEYS}}
    return slim


# -- parallel campaign fabric ------------------------------------------------

#: The wall-clock target a 4+-core runner is expected to hit with 4 jobs;
#: recorded alongside the measurement, never gated (CI gates the digests).
PARALLEL_SPEEDUP_TARGET = 3.0


def _campaign_digests(result) -> dict:
    digests = {}
    for note in result.notes:
        for key in ("corpus digest", "campaign digest"):
            if note.startswith(key + ": "):
                digests[key.replace(" ", "_")] = note.split(": ", 1)[1]
    return digests


def run_parallel_bench(quick: bool, jobs: int = 4) -> dict:
    """The same fuzz campaign serial and sharded: digests must be
    byte-identical (the fabric's merge contract); the speedup is reported
    against however many cores this machine actually has."""
    from repro.experiments import fuzz_campaign

    seeds = (0, 25) if quick else (0, 100)
    runs = {}
    for label, n_jobs in (("serial", 1), ("sharded", jobs)):
        t0 = time.time()
        result = fuzz_campaign.run(seeds=seeds, jobs=n_jobs)
        wall = time.time() - t0
        runs[label] = {"jobs": n_jobs, "wall_s": round(wall, 3),
                       "failing_seeds": len(result.rows),
                       **_campaign_digests(result)}
        print(f"[parallel:{label}] jobs={n_jobs} wall {wall:.1f}s "
              f"campaign digest {runs[label].get('campaign_digest')}")
    for key in ("corpus_digest", "campaign_digest"):
        if runs["serial"].get(key) != runs["sharded"].get(key):
            raise SystemExit(
                f"parallel bench: {key} diverged between jobs=1 and "
                f"jobs={jobs}: {runs['serial'].get(key)} != "
                f"{runs['sharded'].get(key)}")
    speedup = round(runs["serial"]["wall_s"]
                    / max(runs["sharded"]["wall_s"], 1e-9), 2)
    cores = os.cpu_count() or 1
    status = ("meets" if speedup >= PARALLEL_SPEEDUP_TARGET else
              "below (expected on few-core machines)")
    print(f"[parallel] speedup {speedup}x with {jobs} jobs on {cores} "
          f"core(s) — {status} the {PARALLEL_SPEEDUP_TARGET}x "
          f"4-core target; digests byte-identical")
    return {
        "generated_by": "benchmarks/perf/perf_bench.py --parallel",
        "mode": "quick" if quick else "full",
        "seed_range": f"{seeds[0]}:{seeds[1]}",
        "cores": cores,
        "serial": runs["serial"],
        "sharded": runs["sharded"],
        "wall_speedup": speedup,
        "speedup_target_on_4_cores": PARALLEL_SPEEDUP_TARGET,
        "digests_identical": True,
    }


# -- observatory overhead ----------------------------------------------------

#: Engine counters that must be bit-identical with detectors on — the
#: observatory only *reads* telemetry, so the fair-share engine does the
#: same work either way.  ``events_processed`` is deliberately absent:
#: detector ticks are sim events, so the kernel legitimately processes
#: more of them.
OBSERVATORY_IDENTICAL = ("rebalance_count", "flow_visits",
                         "completed_flows")

#: Wall-clock overhead target for the detectors-on run (warn-only, like
#: every other wall-clock figure here — machines differ).
OBSERVATORY_OVERHEAD_TARGET = 0.05

#: Repeats per configuration; the *minimum* wall is the measurement (the
#: runs are sub-second, so scheduler noise dominates a single sample).
OBSERVATORY_REPEATS = 5


def _observatory_wordcount(quick: bool, with_observatory: bool):
    """One seeded Wordcount, optionally with the observatory running."""
    scale = 400
    n_hosts, n_nodes, nbytes, n_reduces = (
        (2, 16, 256 * C.MB, 8) if quick else (4, 64, 1 * C.GB, 16))
    platform = VHadoopPlatform(PlatformConfig(n_hosts=n_hosts, seed=0))
    cluster = platform.provision_cluster(
        "obsbench", ClusterSpec.spread(n_nodes, hosts=n_hosts))
    lines = generate_corpus(nbytes // scale,
                            rng=platform.datacenter.rng.fresh("corpus"))
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(scale), timed=False)
    obs = cluster.observatory().start() if with_observatory else None
    job = wordcount_job("/in", "/out", n_reduces=n_reduces,
                        volume_scale=scale)
    t0, c0 = time.time(), time.process_time()
    report = platform.run_job(cluster, job)
    wall = time.time() - t0
    cpu = time.process_time() - c0
    if obs is not None:
        obs.stop()
    records = platform.collect(cluster, report)
    output_digest = hashlib.sha256(
        repr(records).encode("utf-8")).hexdigest()[:16]
    alerts = len(obs.alerts()) if obs is not None else 0
    counters = _counters(platform, wall)
    counters["cpu_s"] = round(cpu, 3)
    return repr(report.elapsed), output_digest, counters, alerts


def _observatory_fold(runs, with_observatory: bool):
    """Fold one configuration's repeats: every repeat must agree
    bit-for-bit, and the minimum wall is the measurement."""
    elapsed, digest, counters, alerts = runs[0]
    label = "on: " if with_observatory else "off:"
    for other_elapsed, other_digest, other, other_alerts in runs[1:]:
        same = (other_elapsed == elapsed and other_digest == digest
                and other_alerts == alerts
                and all(other[k] == counters[k]
                        for k in OBSERVATORY_IDENTICAL))
        if not same:
            raise SystemExit(
                f"observatory: detectors {label.strip()} run is not "
                "deterministic across repeats")
    counters = dict(counters)
    counters["wall_s"] = min(r[2]["wall_s"] for r in runs)
    counters["cpu_s"] = min(r[2]["cpu_s"] for r in runs)
    print(f"[observatory] detectors {label} cpu {counters['cpu_s']}s, "
          f"wall {counters['wall_s']}s (min of {OBSERVATORY_REPEATS}), "
          f"{counters['events_processed']} events, {alerts} alerts")
    return elapsed, digest, counters, alerts


def run_observatory_suite(quick: bool) -> dict:
    """Detectors off vs on: assert zero simulated perturbation, measure
    the wall-clock cost of observing."""
    # Interleave the configurations so slow drift in the process (allocator
    # growth, CPU frequency) biases neither side.
    off_runs, on_runs = [], []
    for _ in range(OBSERVATORY_REPEATS):
        off_runs.append(_observatory_wordcount(quick, False))
        on_runs.append(_observatory_wordcount(quick, True))
    off_elapsed, off_digest, off, _ = _observatory_fold(off_runs, False)
    on_elapsed, on_digest, on, alerts = _observatory_fold(on_runs, True)
    if on_elapsed != off_elapsed:
        raise SystemExit(
            f"observatory: detectors perturbed the simulation — elapsed "
            f"{on_elapsed} != {off_elapsed}")
    if on_digest != off_digest:
        raise SystemExit(
            "observatory: detectors changed the job's output records")
    for key in OBSERVATORY_IDENTICAL:
        if on[key] != off[key]:
            raise SystemExit(
                f"observatory: engine counter {key} drifted with "
                f"detectors on: {on[key]} != {off[key]}")
    # CPU time is the overhead measurement: the simulator is
    # single-threaded, so process time is the work actually added, free of
    # scheduler noise that dwarfs a sub-second wall-clock delta.
    overhead = on["cpu_s"] / max(off["cpu_s"], 1e-9) - 1.0
    status = "within" if overhead < OBSERVATORY_OVERHEAD_TARGET else "OVER"
    print(f"[observatory] cpu overhead {overhead:+.1%} "
          f"({status} the {OBSERVATORY_OVERHEAD_TARGET:.0%} target), "
          "sim outputs and engine counters bit-identical")
    return {
        "generated_by": "benchmarks/perf/perf_bench.py --observatory",
        "mode": "quick" if quick else "full",
        "workload": "wordcount",
        "sim_elapsed": off_elapsed,
        "output_digest": off_digest,
        "detectors_off": off,
        "detectors_on": on,
        "identical_counters": list(OBSERVATORY_IDENTICAL),
        "cpu_overhead": round(overhead, 4),
        "cpu_overhead_target": OBSERVATORY_OVERHEAD_TARGET,
        # True findings, not noise: the bench Wordcount's hash partitioning
        # is genuinely skewed, and the skew detector says so.  Zero false
        # positives on a *fault-free* run is asserted by the chaos matrix
        # experiment's clean baseline, where the workload is known-quiet.
        "alerts_during_run": alerts,
    }


# -- time-series store overhead ----------------------------------------------

#: Same read-only contract as the observatory: the sampler only snapshots
#: the metrics registry, so these engine counters must not move.
TIMESERIES_IDENTICAL = OBSERVATORY_IDENTICAL

#: CPU-time overhead target for the sampler-on run (warn-only).
TIMESERIES_OVERHEAD_TARGET = 0.05

TIMESERIES_REPEATS = 5


def _timeseries_wordcount(quick: bool, with_store: bool):
    """One seeded Wordcount, optionally with the registry sampler running."""
    scale = 400
    n_hosts, n_nodes, nbytes, n_reduces = (
        (2, 16, 256 * C.MB, 8) if quick else (4, 64, 1 * C.GB, 16))
    platform = VHadoopPlatform(PlatformConfig(n_hosts=n_hosts, seed=0))
    cluster = platform.provision_cluster(
        "tsbench", ClusterSpec.spread(n_nodes, hosts=n_hosts))
    lines = generate_corpus(nbytes // scale,
                            rng=platform.datacenter.rng.fresh("corpus"))
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(scale), timed=False)
    store = cluster.telemetry.start_timeseries() if with_store else None
    job = wordcount_job("/in", "/out", n_reduces=n_reduces,
                        volume_scale=scale)
    t0, c0 = time.time(), time.process_time()
    report = platform.run_job(cluster, job)
    wall = time.time() - t0
    cpu = time.process_time() - c0
    store_digest, n_series = "", 0
    if store is not None:
        cluster.telemetry.stop_timeseries()
        store_digest, n_series = store.digest(), len(store)
    records = platform.collect(cluster, report)
    output_digest = hashlib.sha256(
        repr(records).encode("utf-8")).hexdigest()[:16]
    counters = _counters(platform, wall)
    counters["cpu_s"] = round(cpu, 3)
    return (repr(report.elapsed), output_digest, counters,
            (store_digest, n_series))


def _timeseries_fold(runs, with_store: bool):
    """Fold one configuration's repeats (everything must agree bit-exact,
    including the store digest); the minimum cpu/wall is the measurement."""
    elapsed, digest, counters, store = runs[0]
    label = "on: " if with_store else "off:"
    for other_elapsed, other_digest, other, other_store in runs[1:]:
        same = (other_elapsed == elapsed and other_digest == digest
                and other_store == store
                and all(other[k] == counters[k]
                        for k in TIMESERIES_IDENTICAL))
        if not same:
            raise SystemExit(
                f"timeseries: sampler {label.strip()} run is not "
                "deterministic across repeats")
    counters = dict(counters)
    counters["wall_s"] = min(r[2]["wall_s"] for r in runs)
    counters["cpu_s"] = min(r[2]["cpu_s"] for r in runs)
    print(f"[timeseries] sampler {label} cpu {counters['cpu_s']}s, "
          f"wall {counters['wall_s']}s (min of {TIMESERIES_REPEATS}), "
          f"{counters['events_processed']} events"
          + (f", {store[1]} series, store digest {store[0]}"
             if with_store else ""))
    return elapsed, digest, counters, store


def run_timeseries_suite(quick: bool) -> dict:
    """Registry sampler off vs on: zero simulated perturbation, measure
    the CPU cost of keeping history."""
    off_runs, on_runs = [], []
    for _ in range(TIMESERIES_REPEATS):  # interleaved, like --observatory
        off_runs.append(_timeseries_wordcount(quick, False))
        on_runs.append(_timeseries_wordcount(quick, True))
    off_elapsed, off_digest, off, _ = _timeseries_fold(off_runs, False)
    on_elapsed, on_digest, on, store = _timeseries_fold(on_runs, True)
    if on_elapsed != off_elapsed:
        raise SystemExit(
            f"timeseries: sampler perturbed the simulation — elapsed "
            f"{on_elapsed} != {off_elapsed}")
    if on_digest != off_digest:
        raise SystemExit(
            "timeseries: sampler changed the job's output records")
    for key in TIMESERIES_IDENTICAL:
        if on[key] != off[key]:
            raise SystemExit(
                f"timeseries: engine counter {key} drifted with the "
                f"sampler on: {on[key]} != {off[key]}")
    overhead = on["cpu_s"] / max(off["cpu_s"], 1e-9) - 1.0
    status = "within" if overhead < TIMESERIES_OVERHEAD_TARGET else "OVER"
    print(f"[timeseries] cpu overhead {overhead:+.1%} "
          f"({status} the {TIMESERIES_OVERHEAD_TARGET:.0%} target), "
          "sim outputs and engine counters bit-identical")
    return {
        "generated_by": "benchmarks/perf/perf_bench.py --timeseries",
        "mode": "quick" if quick else "full",
        "workload": "wordcount",
        "sim_elapsed": off_elapsed,
        "output_digest": off_digest,
        "sampler_off": off,
        "sampler_on": on,
        "n_series": store[1],
        "store_digest": store[0],
        "identical_counters": list(TIMESERIES_IDENTICAL),
        "cpu_overhead": round(overhead, 4),
        "cpu_overhead_target": TIMESERIES_OVERHEAD_TARGET,
    }


# -- harness -----------------------------------------------------------------

def run_suite(quick: bool, with_legacy: bool) -> dict:
    out = {"generated_by": "benchmarks/perf/perf_bench.py",
           "mode": "quick" if quick else "full",
           "workloads": {}}
    for name, fn in WORKLOADS:
        entry = {}
        with _engine(legacy=False):
            elapsed, counters, extra = fn(quick)
        entry["sim_elapsed"] = elapsed
        entry["incremental"] = counters
        entry.update(extra)
        print(f"[{name}] incremental: wall {counters['wall_s']}s, "
              f"{counters['events_processed']} events, "
              f"{counters['rebalance_count']} rebalances, "
              f"{counters['flow_visits']} flow visits")
        if with_legacy:
            with _engine(legacy=True):
                legacy_elapsed, legacy, legacy_extra = fn(quick)
            if legacy_elapsed != elapsed:
                raise SystemExit(
                    f"{name}: determinism invariant broken — legacy engine "
                    f"simulated {legacy_elapsed}, incremental {elapsed}")
            if legacy_extra != extra:
                raise SystemExit(f"{name}: legacy engine changed workload "
                                 f"outputs: {legacy_extra} != {extra}")
            entry["legacy"] = legacy
            entry["wall_speedup"] = round(
                legacy["wall_s"] / max(counters["wall_s"], 1e-9), 2)
            inc_vpr = counters["flow_visits"] / max(
                counters["rebalance_count"], 1)
            leg_vpr = legacy["flow_visits"] / max(
                legacy["rebalance_count"], 1)
            entry["visits_per_rebalance"] = {
                "incremental": round(inc_vpr, 1), "legacy": round(leg_vpr, 1)}
            entry["visit_reduction"] = round(leg_vpr / max(inc_vpr, 1e-9), 1)
            print(f"[{name}] legacy:      wall {legacy['wall_s']}s -> "
                  f"speedup {entry['wall_speedup']}x, visit reduction "
                  f"{entry['visit_reduction']}x (sim elapsed identical)")
        out["workloads"][name] = entry
    return out


def baseline_probe(quick: bool, out_path: Path) -> None:
    """Subprocess entry: run the suite against whatever tree PYTHONPATH
    points at (typically a pre-PR worktree) and dump wall + sim elapsed."""
    probe = {}
    for name, fn in WORKLOADS:
        elapsed, counters, extra = fn(quick)
        probe[name] = {"sim_elapsed": elapsed,
                       "wall_s": counters["wall_s"], **extra}
        print(f"[baseline:{name}] wall {counters['wall_s']}s",
              file=sys.stderr)
    out_path.write_text(json.dumps(probe, indent=2) + "\n", encoding="utf-8")


def run_baseline_tree(tree: Path, quick: bool, results: dict) -> None:
    """Measure the identical workloads on a real pre-PR checkout and fold
    the walls + bit-exactness verdict into ``results``."""
    src = tree / "src"
    if not (src / "repro").is_dir():
        raise SystemExit(f"--baseline-tree: {src}/repro not found")
    probe_file = Path(f"{results['out_stem']}.baseline-probe.json")
    cmd = [sys.executable, os.path.abspath(__file__),
           "--baseline-probe", str(probe_file)]
    if quick:
        cmd.append("--quick")
    env = dict(os.environ, PYTHONPATH=str(src))
    subprocess.run(cmd, check=True, env=env)
    probe = json.loads(probe_file.read_text(encoding="utf-8"))
    probe_file.unlink()
    for name, entry in results["workloads"].items():
        base = probe[name]
        if base["sim_elapsed"] != entry["sim_elapsed"]:
            raise SystemExit(
                f"{name}: pre-PR tree simulated {base['sim_elapsed']}, "
                f"this tree {entry['sim_elapsed']} — not bit-identical")
        if "digest" in entry and base.get("digest") != entry["digest"]:
            raise SystemExit(f"{name}: chaos digest changed vs pre-PR tree")
        entry["baseline"] = {"wall_s": base["wall_s"],
                             "sim_elapsed_identical": True}
        entry["wall_speedup_vs_baseline"] = round(
            base["wall_s"] / max(entry["incremental"]["wall_s"], 1e-9), 2)
        print(f"[{name}] pre-PR tree: wall {base['wall_s']}s -> "
              f"{entry['wall_speedup_vs_baseline']}x speedup, "
              "sim outputs bit-identical")


def check(results: dict, baseline_path: Path) -> int:
    baselines = json.loads(baseline_path.read_text(encoding="utf-8"))
    if baselines.get("mode") != results["mode"]:
        print(f"check: baseline mode {baselines.get('mode')!r} does not "
              f"match run mode {results['mode']!r}", file=sys.stderr)
        return 1
    failures = 0
    for name, entry in results["workloads"].items():
        want = baselines["workloads"].get(name)
        if want is None:
            print(f"check: no baseline for workload {name!r}",
                  file=sys.stderr)
            failures += 1
            continue
        if entry["sim_elapsed"] != want["sim_elapsed"]:
            print(f"check: {name}.sim_elapsed {entry['sim_elapsed']} != "
                  f"baseline {want['sim_elapsed']}", file=sys.stderr)
            failures += 1
        for key in CHECKED_KEYS:
            got = entry["incremental"][key]
            expect = want["incremental"][key]
            if got != expect:
                print(f"check: {name}.{key} {got} != baseline {expect}",
                      file=sys.stderr)
                failures += 1
        if "digest" in want and entry.get("digest") != want["digest"]:
            print(f"check: {name}.digest {entry.get('digest')} != "
                  f"baseline {want['digest']}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"check: {failures} counter regression(s)", file=sys.stderr)
        return 1
    print("check: all deterministic counters match the baselines")
    return 0


def to_baselines(results: dict) -> dict:
    """Strip wall-clock and derived fields; keep only what --check reads."""
    slim = {"mode": results["mode"], "workloads": {}}
    for name, entry in results["workloads"].items():
        keep = {"sim_elapsed": entry["sim_elapsed"],
                "incremental": {k: entry["incremental"][k]
                                for k in CHECKED_KEYS}}
        if "digest" in entry:
            keep["digest"] = entry["digest"]
        slim["workloads"][name] = keep
    return slim


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads (CI perf-smoke)")
    parser.add_argument("--no-legacy", action="store_true",
                        help="skip the legacy-engine comparison runs")
    parser.add_argument("--observatory", action="store_true",
                        help="measure observatory overhead instead "
                             "(detectors off vs on; writes "
                             "BENCH_observatory.json)")
    parser.add_argument("--scale", action="store_true",
                        help="climb the 16/100/500/1000-VM rack-topology "
                             "ladder instead (quick: first two rungs; "
                             "writes BENCH_scale.json)")
    parser.add_argument("--scale-rung", metavar="NAME",
                        help=argparse.SUPPRESS)  # internal subprocess entry
    parser.add_argument("--scale-probe", metavar="FILE",
                        help=argparse.SUPPRESS)
    parser.add_argument("--timeseries", action="store_true",
                        help="measure the time-series store's sampling "
                             "overhead instead (registry sampler off vs "
                             "on; writes BENCH_timeseries.json)")
    parser.add_argument("--parallel", action="store_true",
                        help="measure the parallel campaign fabric instead: "
                             "the same fuzz campaign serial and sharded, "
                             "digest-compared (writes BENCH_parallel.json)")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for --scale (default 1) and "
                             "the sharded half of --parallel (default 4)")
    parser.add_argument("--out", default=None,
                        help="result file (default: BENCH_fairshare.json, "
                             "or BENCH_observatory.json with --observatory)")
    parser.add_argument("--baseline-tree", metavar="DIR",
                        help="pre-PR checkout to measure the real speedup "
                             "against (e.g. a git worktree of the seed)")
    parser.add_argument("--baseline-probe", metavar="FILE",
                        help=argparse.SUPPRESS)  # internal subprocess entry
    parser.add_argument("--check", metavar="FILE",
                        help="compare deterministic counters against FILE")
    parser.add_argument("--write-baselines", metavar="FILE",
                        help="write the run's deterministic counters to FILE")
    args = parser.parse_args(argv)

    if args.baseline_probe:
        baseline_probe(args.quick, Path(args.baseline_probe))
        return 0

    if args.scale_rung:
        entry = scale_rung(_rung_by_name(args.scale_rung))
        Path(args.scale_probe).write_text(
            json.dumps(entry, indent=2) + "\n", encoding="utf-8")
        return 0

    if args.parallel:
        results = run_parallel_bench(quick=args.quick, jobs=args.jobs or 4)
        out = args.out or "BENCH_parallel.json"
        Path(out).write_text(json.dumps(results, indent=2) + "\n",
                             encoding="utf-8")
        print(f"wrote {out}")
        return 0

    if args.scale:
        results = run_scale_ladder(quick=args.quick, jobs=args.jobs or 1)
        out = args.out or "BENCH_scale.json"
        Path(out).write_text(json.dumps(results, indent=2) + "\n",
                             encoding="utf-8")
        print(f"wrote {out}")
        if args.write_baselines:
            Path(args.write_baselines).write_text(
                json.dumps(to_scale_baselines(results), indent=2) + "\n",
                encoding="utf-8")
            print(f"wrote {args.write_baselines}")
        if args.check:
            return check_scale(results, Path(args.check))
        return 0

    if args.observatory:
        results = run_observatory_suite(quick=args.quick)
        out = args.out or "BENCH_observatory.json"
        Path(out).write_text(json.dumps(results, indent=2) + "\n",
                             encoding="utf-8")
        print(f"wrote {out}")
        return 0

    if args.timeseries:
        results = run_timeseries_suite(quick=args.quick)
        out = args.out or "BENCH_timeseries.json"
        Path(out).write_text(json.dumps(results, indent=2) + "\n",
                             encoding="utf-8")
        print(f"wrote {out}")
        return 0

    out = args.out or "BENCH_fairshare.json"
    results = run_suite(quick=args.quick, with_legacy=not args.no_legacy)
    if args.baseline_tree:
        results["out_stem"] = out
        run_baseline_tree(Path(args.baseline_tree), args.quick, results)
        del results["out_stem"]
    Path(out).write_text(json.dumps(results, indent=2) + "\n",
                         encoding="utf-8")
    print(f"wrote {out}")
    if args.write_baselines:
        Path(args.write_baselines).write_text(
            json.dumps(to_baselines(results), indent=2) + "\n",
            encoding="utf-8")
        print(f"wrote {args.write_baselines}")
    if args.check:
        return check(results, Path(args.check))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
