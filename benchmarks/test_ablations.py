"""Ablation benches for the design decisions DESIGN.md §5 calls out.

Each ablation switches one mechanism off (or to a degenerate setting) and
shows the measured consequence — evidence that the mechanism, not a
coincidence, produces the paper's shapes.
"""

from repro import constants as C
from repro.config import HadoopConfig, HostConfig, PlatformConfig
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads.mrbench import run_mrbench
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)
from repro.datasets.text import generate_corpus

SCALE = 100
INPUT_MB = 192


def _run_wordcount(layout="normal", hadoop_config=None, host_config=None,
                   use_combiner=False, seed=0):
    config = PlatformConfig(n_hosts=2, seed=seed,
                            host=host_config or HostConfig())
    platform = VHadoopPlatform(config)
    placement = (ClusterSpec.single_host(16) if layout == "normal"
                 else ClusterSpec.packed(16, hosts=2))
    cluster = platform.provision_cluster("abl", placement,
                                         hadoop_config=hadoop_config)
    lines = generate_corpus(INPUT_MB * C.MB // SCALE,
                            rng=platform.datacenter.rng.fresh("corpus"))
    platform.upload(cluster, "/in", lines_as_records(lines),
                    sizeof=scaled_line_sizeof(SCALE), timed=False)
    job = wordcount_job("/in", "/out", n_reduces=4, volume_scale=SCALE,
                        use_combiner=use_combiner)
    return platform.run_job(cluster, job)


def test_ablation_locality_scheduling(one_shot):
    """Decision 4: locality-aware map scheduling cuts remote split reads."""

    def run():
        with_loc = _run_wordcount(
            hadoop_config=HadoopConfig(locality_aware=True))
        without = _run_wordcount(
            hadoop_config=HadoopConfig(locality_aware=False))
        return with_loc, without

    with_loc, without = one_shot(run)
    frac_with = with_loc.locality_fractions()
    frac_without = without.locality_fractions()
    print(f"\nlocality on : {frac_with}  elapsed={with_loc.elapsed:.1f}s")
    print(f"locality off: {frac_without}  elapsed={without.elapsed:.1f}s")
    assert frac_with.get("node", 0) >= frac_without.get("node", 0)


def test_ablation_combiner(one_shot):
    """Combiners collapse the shuffle (the paper's Wordcount has none —
    which is what makes it network-sensitive)."""

    def run():
        plain = _run_wordcount(use_combiner=False)
        combined = _run_wordcount(use_combiner=True)
        return plain, combined

    plain, combined = one_shot(run)
    print(f"\nno combiner : shuffle={plain.shuffle_bytes / 1e6:7.1f} MB "
          f"elapsed={plain.elapsed:.1f}s")
    print(f"with combiner: shuffle={combined.shuffle_bytes / 1e6:7.1f} MB "
          f"elapsed={combined.elapsed:.1f}s")
    assert combined.shuffle_bytes < 0.5 * plain.shuffle_bytes


def test_ablation_task_startup_overhead(one_shot):
    """Decision 5: per-task startup produces the MRBench shape; without it
    tiny jobs barely notice extra tasks."""

    def run_pair(startup):
        config = HadoopConfig(task_startup_s=startup)
        platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=0))
        cluster = platform.provision_cluster("mb", ClusterSpec.single_host(16),
                                             hadoop_config=config)
        runner = platform.runner(cluster)
        small = run_mrbench(runner, cluster, n_maps=1, n_reduces=1,
                            run_index=0).elapsed
        large = run_mrbench(runner, cluster, n_maps=6, n_reduces=1,
                            run_index=1).elapsed
        return large - small

    def run():
        return run_pair(C.TASK_STARTUP_S), run_pair(0.0)

    growth_with, growth_without = one_shot(run)
    print(f"\nmap-scaling growth with startup cost:    "
          f"{growth_with:+.2f} s")
    print(f"map-scaling growth without startup cost: "
          f"{growth_without:+.2f} s")
    assert growth_with > growth_without


def test_ablation_netback_bottleneck(one_shot):
    """Decision 2/3: the Xen netback ceiling is what separates cross-domain
    from normal; with wire-speed netback the gap largely closes."""

    def run():
        slow = HostConfig()  # default: 40 MB/s netback
        fast = HostConfig(netback_bandwidth=C.GBIT_ETHERNET_BPS)
        gap_slow = (_run_wordcount("cross-domain", host_config=slow).elapsed
                    - _run_wordcount("normal", host_config=slow).elapsed)
        gap_fast = (_run_wordcount("cross-domain", host_config=fast).elapsed
                    - _run_wordcount("normal", host_config=fast).elapsed)
        return gap_slow, gap_fast

    gap_slow, gap_fast = one_shot(run)
    print(f"\ncross-domain gap with Xen netback ceiling: {gap_slow:+.1f} s")
    print(f"cross-domain gap at wire-speed netback:    {gap_fast:+.1f} s")
    assert gap_slow > gap_fast


def test_ablation_migration_sequential_vs_concurrent(one_shot):
    """Gang migration shares the NIC: wall-clock shrinks, per-VM times
    stretch (Virt-LM's two modes)."""
    from repro.config import VMConfig

    def run_mode(concurrent):
        platform = VHadoopPlatform(PlatformConfig(n_hosts=2, seed=1))
        cluster = platform.provision_cluster(
            "m", ClusterSpec.single_host(8), vm_config=VMConfig(memory=512 * C.MiB))
        dc = platform.datacenter
        event = dc.virtlm.migrate_cluster(cluster.vms, dc.machine(1),
                                          concurrent=concurrent)
        dc.sim.run_until(event)
        return event.value

    def run():
        return run_mode(False), run_mode(True)

    sequential, gang = one_shot(run)
    print(f"\nsequential: overall={sequential.overall_migration_time_s:.1f}s"
          f" mean-per-vm={sum(sequential.migration_times) / 8:.1f}s")
    print(f"gang:       overall={gang.overall_migration_time_s:.1f}s"
          f" mean-per-vm={sum(gang.migration_times) / 8:.1f}s")
    assert gang.overall_migration_time_s < \
        sequential.overall_migration_time_s
    assert sum(gang.migration_times) > sum(sequential.migration_times)
