"""Table I — the four-benchmark suite smoke run."""

from repro.experiments import format_table
from repro.experiments import table1_benchmarks


def test_table1(one_shot):
    result = one_shot(table1_benchmarks.run, seed=0)
    print()
    print(format_table(result))
    assert all(row[2] for row in result.rows)
