"""Scale stress: the simulator well beyond the paper's testbed.

The paper's 16-VM / 2-host platform is small; this bench provisions a
64-node hadoop virtual cluster over 4 physical machines and pushes a 2 GB
Wordcount through it — demonstrating that the reproduction scales as a
*tool* (datacenters larger than the original testbed) and that the
qualitative behaviours persist at scale.
"""

from repro import constants as C
from repro.config import PlatformConfig
from repro.datasets.text import generate_corpus
from repro.platform import ClusterSpec, VHadoopPlatform
from repro.workloads.wordcount import (lines_as_records, scaled_line_sizeof,
                                       wordcount_job)

SCALE = 400


def test_64_node_cluster_2gb_wordcount(one_shot):
    def run():
        platform = VHadoopPlatform(PlatformConfig(n_hosts=4, seed=0))
        cluster = platform.provision_cluster(
            "big", ClusterSpec.spread(64, hosts=4))
        lines = generate_corpus(2 * C.GB // SCALE,
                                rng=platform.datacenter.rng.fresh("corpus"))
        platform.upload(cluster, "/in", lines_as_records(lines),
                        sizeof=scaled_line_sizeof(SCALE), timed=False)
        job = wordcount_job("/in", "/out", n_reduces=16, volume_scale=SCALE)
        report = platform.run_job(cluster, job)
        return platform, cluster, report

    platform, cluster, report = one_shot(run)
    print(f"\n64-node / 4-host cluster, 2 GB input:")
    print(f"  elapsed          {report.elapsed:8.1f} simulated s")
    print(f"  maps/reduces     {report.n_maps} / {report.n_reduces}")
    print(f"  shuffle          {report.shuffle_bytes / 1e9:8.2f} GB")
    print(f"  map locality     {report.locality_fractions()}")
    assert cluster.n_nodes == 64
    assert len(cluster.hosts_used()) == 4
    assert report.n_maps >= 28  # 2 GB at 64 MiB blocks
    assert report.elapsed > 0
    # The functional result is still exact at scale.
    output = dict(platform.collect(cluster, report))
    assert sum(output.values()) > 0
    assert all(isinstance(count, int) and count > 0
               for count in output.values())
