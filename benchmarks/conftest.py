"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures on the
simulated platform.  Runs are deterministic, so a single round is exact;
``--benchmark-only`` selects this suite.
"""

import pytest


@pytest.fixture()
def one_shot(benchmark):
    """Run the experiment once (deterministic simulation) and return its
    result, while still reporting wall-clock through pytest-benchmark."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
