"""Fig. 2 — Wordcount, normal vs cross-domain, input-size sweep."""

from repro.experiments import format_table
from repro.experiments import fig2_wordcount


def test_fig2(one_shot):
    result = one_shot(fig2_wordcount.run,
                      sizes_mb=fig2_wordcount.QUICK_SIZES_MB, seed=0)
    print()
    print(format_table(result))
    normal = result.column("normal_s")
    cross = result.column("cross_domain_s")
    # Paper shapes: cross-domain always slower; runtime grows with input.
    assert all(c >= n for n, c in zip(normal, cross))
    assert normal == sorted(normal)
    assert cross == sorted(cross)
