"""Fig. 3 — MRBench map/reduce scaling on normal vs cross-domain."""

from repro.experiments import format_table
from repro.experiments import fig3_mrbench


def test_fig3a_map_scaling(one_shot):
    result = one_shot(fig3_mrbench.run_map_scaling,
                      scales=fig3_mrbench.MAP_SCALES, seed=0, runs=3)
    print()
    print(format_table(result))
    normal = result.column("normal_s")
    cross = result.column("cross_domain_s")
    assert normal[-1] > normal[0]          # grows with map count
    assert all(c > n for n, c in zip(normal, cross))


def test_fig3b_reduce_scaling(one_shot):
    result = one_shot(fig3_mrbench.run_reduce_scaling,
                      scales=fig3_mrbench.REDUCE_SCALES, seed=0, runs=3)
    print()
    print(format_table(result))
    normal = result.column("normal_s")
    cross = result.column("cross_domain_s")
    assert normal[-1] > normal[0]          # grows with reduce count
    assert all(c > n for n, c in zip(normal, cross))
