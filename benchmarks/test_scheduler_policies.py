"""Scheduler policies on a mixed multi-tenant workload (FIFO/Fair/Capacity)."""

from repro.experiments import format_table
from repro.experiments import sched_policies


def test_policy_comparison(one_shot):
    result = one_shot(sched_policies.run, seed=0, quick=True)
    print()
    print(format_table(result))
    rows = {row[0]: row for row in result.rows}
    wait = {name: rows[name][result.columns.index("small_mean_wait_s")]
            for name in rows}
    # Fair sharing serves the interactive pool while the batch job runs.
    assert wait["fair"] < wait["fifo"]
    # Capacity guarantees help too, though without preemption.
    assert wait["capacity"] < wait["fifo"]
    # Only the fair scheduler (preemption configured) ever kills a task.
    preempt = {name: rows[name][result.columns.index("preemptions")]
               for name in rows}
    assert preempt["fair"] > 0
    assert preempt["fifo"] == preempt["capacity"] == 0
    # Jobs overlapped under every policy.
    assert all(c > 0 for c in result.column("concurrent_s"))
    assert all(m > 0 for m in result.column("makespan_s"))
