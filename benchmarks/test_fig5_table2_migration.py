"""Fig. 5 + Table II — live migration of the 16-node hadoop cluster."""

from repro.experiments import format_table
from repro.experiments import fig5_migration


def test_table2_overall(one_shot):
    result = one_shot(fig5_migration.run_table2, seed=0)
    print()
    print(format_table(result))
    rows = {row[0]: row for row in result.rows}
    # Larger memory -> longer migration (both conditions).
    assert rows["idle.1024MB"][1] > rows["idle.512MB"][1]
    assert rows["wordcount.1024MB"][1] > rows["wordcount.512MB"][1]
    # Wordcount >> idle for both metrics.
    assert rows["wordcount.1024MB"][1] > 1.5 * rows["idle.1024MB"][1]
    assert rows["wordcount.1024MB"][2] > 5.0 * rows["idle.1024MB"][2]


def test_fig5_per_node(one_shot):
    result = one_shot(fig5_migration.run_per_node, seed=0)
    print()
    print(format_table(result))
    by_condition = {}
    for condition, _node, _mig, downtime in result.rows:
        by_condition.setdefault(condition, []).append(downtime)
    idle = by_condition["idle.1024MB"]
    busy = by_condition["wordcount.1024MB"]
    assert len(idle) == len(busy) == 16
    # Downtime varies widely only under load (paper observation iii).
    assert (max(busy) / min(busy)) > 3.0 * (max(idle) / min(idle))
