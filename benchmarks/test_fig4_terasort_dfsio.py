"""Fig. 4 — TeraSort sweep and TestDFSIO throughput."""

from repro.experiments import format_table
from repro.experiments import fig4_terasort_dfsio


def test_fig4a_terasort(one_shot):
    result = one_shot(fig4_terasort_dfsio.run_terasort_sweep,
                      sizes_mb=fig4_terasort_dfsio.QUICK_TERA_MB, seed=0)
    print()
    print(format_table(result))
    assert all(row[-1] for row in result.rows)            # TeraValidate
    sort_n = result.column("normal_sort_s")
    sort_x = result.column("cross_sort_s")
    assert sort_n == sorted(sort_n)                        # grows with data
    assert all(x > n for n, x in zip(sort_n, sort_x))      # cross worse


def test_fig4b_dfsio(one_shot):
    result = one_shot(fig4_terasort_dfsio.run_dfsio_sweep, seed=0)
    print()
    print(format_table(result))
    rows = {row[0]: row for row in result.rows}
    for layout in ("normal", "cross-domain"):
        assert rows[layout][2] > rows[layout][1]           # read > write
    assert rows["cross-domain"][1] < rows["normal"][1]
    assert rows["cross-domain"][2] <= rows["normal"][2]
