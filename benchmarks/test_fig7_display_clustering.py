"""Fig. 7 — visualizing sample clustering vs cluster scale."""

from repro.experiments import format_table
from repro.experiments import fig7_display_clustering


def test_fig7(one_shot):
    result = one_shot(fig7_display_clustering.run,
                      scales=fig7_display_clustering.CLUSTER_SCALES, seed=0)
    print()
    print(format_table(result))
    # Paper shape: relatively smooth curves (light workload).
    for algo in fig7_display_clustering.ALGORITHMS:
        series = result.column(algo)
        assert max(series) < 2.5 * min(series), algo
