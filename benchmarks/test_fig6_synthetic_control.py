"""Fig. 6 — parallel clustering on Synthetic Control vs cluster scale."""

from repro.experiments import format_table
from repro.experiments import fig6_synthetic_control


def test_fig6(one_shot):
    result = one_shot(fig6_synthetic_control.run,
                      scales=fig6_synthetic_control.CLUSTER_SCALES, seed=0)
    print()
    print(format_table(result))
    for column in ("canopy_s", "dirichlet_s", "meanshift_s"):
        series = result.column(column)
        # Paper shape: running time increases from the 2-node to the
        # 16-node cluster.
        assert series[-1] > series[0], column
