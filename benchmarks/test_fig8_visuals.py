"""Fig. 8 — clustering result visualizations (ASCII panels)."""

from repro.experiments import format_table
from repro.experiments import fig8_cluster_visuals


def test_fig8(one_shot):
    result = one_shot(fig8_cluster_visuals.run, seed=42)
    print()
    print(format_table(result))
    print(result.artifacts["sample-data"])
    print(result.artifacts["kmeans"])
    assert set(fig8_cluster_visuals.PANELS) <= set(result.artifacts)
    # Every algorithm found at least one cluster and the panels rendered.
    for panel, clusters, _iters, _conv in result.rows:
        if panel != "sample-data":
            assert clusters >= 1
